//! End-to-end latency (Eqs. 4–5) and construction of the
//! service-eligibility indicator `I1(m, k, i)` (Eq. 3).
//!
//! A request by user `k` for model `i` can be served by edge server `m`
//! (a *cache hit* if `m` stores the model) when the end-to-end latency
//! meets the QoS budget `T̄_{k,i}`:
//!
//! * if `m` covers `k` (Eq. 4): download at the expected rate `C̄_{m,k}`
//!   plus on-device inference;
//! * otherwise (Eq. 5): relay the model over the backhaul to the covering
//!   server `m'` that minimises the total transfer time, then download,
//!   then infer.
//!
//! Crucially the indicator does **not** depend on the placement, so it can
//! be precomputed once per scenario (or once per fading realisation) and
//! reused by every placement algorithm. [`LatencyEvaluator::eligibility`]
//! materialises the dense [`EligibilityTensor`];
//! [`LatencyEvaluator::sparse_eligibility`] builds the coverage-pruned
//! [`SparseEligibility`] without ever allocating the `M × K × I` cube.

use serde::{Deserialize, Serialize};

use trimcaching_modellib::{ModelId, ModelLibrary};
use trimcaching_wireless::allocation::PerUserAllocation;
use trimcaching_wireless::channel::RateContext;
use trimcaching_wireless::coverage::CoverageMap;
use trimcaching_wireless::params::RadioParams;
use trimcaching_wireless::Backhaul;

use crate::demand::Demand;
use crate::eligibility::{EligibilityTensor, SparseEligibility};
use crate::entities::UserId;
use crate::error::ScenarioError;

/// The `M × K` downlink rates `C_{m,k}` in bits per second, stored
/// row-compressed: each server row keeps entries only for the users it
/// covers (the paper never downloads directly from a non-covering server;
/// relayed delivery uses the covering servers' rates instead).
///
/// Point lookups for uncovered in-range pairs return `0.0`, preserving
/// the semantics of the earlier dense matrix, while memory scales with
/// the number of covered `(server, user)` pairs — the difference between
/// megabytes and gigabytes at city scale (1000+ servers, 50k+ users).
/// [`RateMatrix::covered_rates`] iterates a row without paying per-user
/// lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateMatrix {
    num_users: usize,
    /// CSR row offsets, length `M + 1`.
    row_offsets: Vec<usize>,
    /// Covered user indices, ascending within each row.
    users: Vec<u32>,
    /// Rates aligned with `users`.
    rates_bps: Vec<f64>,
}

impl RateMatrix {
    /// Computes the *expected* rate matrix (unit fading gain) used for the
    /// placement decision.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors for invalid parameters.
    pub fn expected(
        coverage: &CoverageMap,
        allocation: &PerUserAllocation,
        params: &RadioParams,
    ) -> Result<Self, ScenarioError> {
        Self::with_fading(coverage, allocation, params, |_m, _k| 1.0)
    }

    /// Computes a rate matrix with an arbitrary per-link fading power gain
    /// supplied by `fading_gain(m, k)` for every covered pair; used by the
    /// Monte-Carlo evaluation over Rayleigh realisations.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors for invalid parameters.
    pub fn with_fading<F>(
        coverage: &CoverageMap,
        allocation: &PerUserAllocation,
        params: &RadioParams,
        mut fading_gain: F,
    ) -> Result<Self, ScenarioError>
    where
        F: FnMut(usize, usize) -> f64,
    {
        let m_count = coverage.num_servers();
        let k_count = coverage.num_users();
        let mut row_offsets = Vec::with_capacity(m_count + 1);
        row_offsets.push(0usize);
        let mut users: Vec<u32> = Vec::new();
        let mut rates_bps: Vec<f64> = Vec::new();
        for m in 0..m_count {
            let share = allocation.share(m)?;
            let ctx = RateContext::new(share.bandwidth_hz, share.power_w, params);
            for &k in coverage.users_of_server(m)? {
                let d = coverage.distance_m(m, k)?;
                users.push(k as u32);
                rates_bps.push(ctx.rate_bps(d, fading_gain(m, k)));
            }
            row_offsets.push(users.len());
        }
        Ok(Self {
            num_users: k_count,
            row_offsets,
            users,
            rates_bps,
        })
    }

    /// Number of servers (rows).
    pub fn num_servers(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of users (columns).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of stored (covered) `(server, user)` entries.
    pub fn num_covered_pairs(&self) -> usize {
        self.users.len()
    }

    /// The rate from server `m` to user `k` in bits per second (zero when
    /// `m` does not cover `k`).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for unknown indices.
    pub fn rate_bps(&self, m: usize, k: usize) -> Result<f64, ScenarioError> {
        if m >= self.num_servers() {
            return Err(ScenarioError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.num_servers(),
            });
        }
        if k >= self.num_users {
            return Err(ScenarioError::IndexOutOfRange {
                entity: "user",
                index: k,
                len: self.num_users,
            });
        }
        let row = &self.users[self.row_offsets[m]..self.row_offsets[m + 1]];
        Ok(match row.binary_search(&(k as u32)) {
            Ok(pos) => self.rates_bps[self.row_offsets[m] + pos],
            Err(_) => 0.0,
        })
    }

    /// Recomputes the rows of the given servers in place against an
    /// updated coverage/allocation state (unit fading gain, i.e. the
    /// *expected* rates used for placement decisions), leaving every
    /// other row's entries bit-identical. Row lengths may change, so the
    /// CSR arrays are re-spliced; the cost is one pass over the stored
    /// pairs plus the recomputation of the named rows. `rows` need not
    /// be sorted or deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown row and
    /// [`ScenarioError::DimensionMismatch`] when `coverage` disagrees
    /// with this matrix on the topology dimensions; the matrix is left
    /// unchanged on error.
    pub fn update_rows(
        &mut self,
        coverage: &CoverageMap,
        allocation: &PerUserAllocation,
        params: &RadioParams,
        rows: &[usize],
    ) -> Result<(), ScenarioError> {
        if rows.is_empty() {
            return Ok(());
        }
        let m_count = self.num_servers();
        if coverage.num_servers() != m_count || coverage.num_users() != self.num_users {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "rate matrix is {}x{} but coverage is {}x{}",
                    m_count,
                    self.num_users,
                    coverage.num_servers(),
                    coverage.num_users()
                ),
            });
        }
        for &m in rows {
            if m >= m_count {
                return Err(ScenarioError::IndexOutOfRange {
                    entity: "server",
                    index: m,
                    len: m_count,
                });
            }
        }
        let mut sorted = rows.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut row_offsets = Vec::with_capacity(m_count + 1);
        row_offsets.push(0usize);
        let mut users: Vec<u32> = Vec::with_capacity(self.users.len());
        let mut rates_bps: Vec<f64> = Vec::with_capacity(self.rates_bps.len());
        let mut pending = sorted.iter().copied().peekable();
        for m in 0..m_count {
            if pending.peek() == Some(&m) {
                pending.next();
                let share = allocation.share(m)?;
                let ctx = RateContext::new(share.bandwidth_hz, share.power_w, params);
                for &k in coverage.users_of_server(m)? {
                    let d = coverage.distance_m(m, k)?;
                    users.push(k as u32);
                    rates_bps.push(ctx.rate_bps(d, 1.0));
                }
            } else {
                let range = self.row_offsets[m]..self.row_offsets[m + 1];
                users.extend_from_slice(&self.users[range.clone()]);
                rates_bps.extend_from_slice(&self.rates_bps[range]);
            }
            row_offsets.push(users.len());
        }
        self.row_offsets = row_offsets;
        self.users = users;
        self.rates_bps = rates_bps;
        Ok(())
    }

    /// Iterates the covered `(user, rate_bps)` pairs of server `m` in
    /// ascending user order, without per-user lookups.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown server.
    pub fn covered_rates(
        &self,
        m: usize,
    ) -> Result<impl Iterator<Item = (usize, f64)> + '_, ScenarioError> {
        if m >= self.num_servers() {
            return Err(ScenarioError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.num_servers(),
            });
        }
        let range = self.row_offsets[m]..self.row_offsets[m + 1];
        Ok(self.users[range.clone()]
            .iter()
            .zip(&self.rates_bps[range])
            .map(|(&k, &r)| (k as usize, r)))
    }
}

/// Computes end-to-end latencies and the eligibility indicator for one
/// scenario snapshot.
#[derive(Debug, Clone)]
pub struct LatencyEvaluator<'a> {
    library: &'a ModelLibrary,
    demand: &'a Demand,
    coverage: &'a CoverageMap,
    backhaul: &'a Backhaul,
    rates: &'a RateMatrix,
}

impl<'a> LatencyEvaluator<'a> {
    /// Creates an evaluator over borrowed scenario components.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] if the components
    /// disagree on the number of users, servers or models.
    pub fn new(
        library: &'a ModelLibrary,
        demand: &'a Demand,
        coverage: &'a CoverageMap,
        backhaul: &'a Backhaul,
        rates: &'a RateMatrix,
    ) -> Result<Self, ScenarioError> {
        if demand.num_models() != library.num_models() {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "demand covers {} models but the library has {}",
                    demand.num_models(),
                    library.num_models()
                ),
            });
        }
        if demand.num_users() != coverage.num_users() || rates.num_users() != coverage.num_users() {
            return Err(ScenarioError::DimensionMismatch {
                reason: "user counts of demand, coverage and rate matrix differ".into(),
            });
        }
        if coverage.num_servers() != backhaul.num_servers()
            || rates.num_servers() != coverage.num_servers()
        {
            return Err(ScenarioError::DimensionMismatch {
                reason: "server counts of coverage, backhaul and rate matrix differ".into(),
            });
        }
        Ok(Self {
            library,
            demand,
            coverage,
            backhaul,
            rates,
        })
    }

    /// Number of models `I` in the underlying library.
    pub fn num_models(&self) -> usize {
        self.library.num_models()
    }

    /// End-to-end latency `T_{m,k,i}` in seconds when edge server `m`
    /// supplies model `i` to user `k` (Eq. 4 if `m` covers `k`, Eq. 5
    /// otherwise). Returns `f64::INFINITY` when no covering server exists
    /// for the user or no positive-rate path exists.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown indices.
    pub fn latency_s(&self, m: usize, user: UserId, model: ModelId) -> Result<f64, ScenarioError> {
        let k = user.index();
        let size_bytes = self.library.model_size_bytes(model)?;
        let size_bits = size_bytes as f64 * 8.0;
        let inference = self.demand.inference_s(user, model)?;
        let covering = self.coverage.servers_of_user(k)?;
        if covering.is_empty() {
            return Ok(f64::INFINITY);
        }
        if covering.contains(&m) {
            let rate = self.rates.rate_bps(m, k)?;
            if rate <= 0.0 {
                return Ok(f64::INFINITY);
            }
            return Ok(size_bits / rate + inference);
        }
        // Relay through the covering server minimising total transfer time.
        let mut best = f64::INFINITY;
        for &mp in covering {
            let edge_rate = self.rates.rate_bps(mp, k)?;
            if edge_rate <= 0.0 {
                continue;
            }
            let backhaul_rate = self.backhaul.rate_bps(m, mp)?;
            let transfer = if backhaul_rate.is_infinite() {
                0.0
            } else {
                size_bits / backhaul_rate
            };
            let total = transfer + size_bits / edge_rate;
            if total < best {
                best = total;
            }
        }
        if best.is_infinite() {
            return Ok(f64::INFINITY);
        }
        Ok(best + inference)
    }

    /// The indicator `I1(m, k, i)`: can server `m` deliver model `i` to
    /// user `k` within the QoS budget?
    ///
    /// # Errors
    ///
    /// Returns an error for unknown indices.
    pub fn eligible(&self, m: usize, user: UserId, model: ModelId) -> Result<bool, ScenarioError> {
        let latency = self.latency_s(m, user, model)?;
        Ok(latency <= self.demand.deadline_s(user, model)?)
    }

    /// Precomputes the full dense `M × K × I` eligibility tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent components.
    pub fn eligibility(&self) -> Result<EligibilityTensor, ScenarioError> {
        EligibilityTensor::try_from_fn(
            self.coverage.num_servers(),
            self.coverage.num_users(),
            self.library.num_models(),
            |m, k, i| self.eligible(m, UserId(k), ModelId(i)),
        )
    }

    /// Builds the coverage-pruned [`SparseEligibility`] without ever
    /// allocating the dense cube.
    ///
    /// The construction walks every request class `(k, i)` once:
    ///
    /// * each **covering** server of `k` is probed individually (Eq. 4);
    /// * **non-covering** servers all share the same relayed latency
    ///   (Eq. 5) when the backhaul mesh is uniform, so a single probe
    ///   decides all of them at once. Per-link backhaul overrides force
    ///   the exact per-server fallback.
    ///
    /// The result is indistinguishable from the dense tensor — the same
    /// `latency_s` decides every triple — but memory follows the number
    /// of eligible triples. When relaying fits the deadline the candidate
    /// lists do grow towards `M`; the representation shines in the
    /// city-scale regime where deadlines preclude backhaul relays for
    /// most request classes.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent components.
    pub fn sparse_eligibility(&self) -> Result<SparseEligibility, ScenarioError> {
        let m_count = self.coverage.num_servers();
        let k_count = self.coverage.num_users();
        let i_count = self.library.num_models();
        let uniform_backhaul = !self.backhaul.has_overrides();
        let size_bits = self.model_size_bits()?;

        let mut pair_offsets = Vec::with_capacity(k_count * i_count + 1);
        pair_offsets.push(0usize);
        let mut pair_servers: Vec<u32> = Vec::new();
        // Direct-eligible covering servers of the current request class.
        let mut direct: Vec<u32> = Vec::new();
        let mut ctx = UniformUserCtx::default();

        for k in 0..k_count {
            let user = UserId(k);
            let covering = self.coverage.servers_of_user(k)?;
            if covering.is_empty() {
                for _ in 0..i_count {
                    pair_offsets.push(pair_servers.len());
                }
                continue;
            }
            if uniform_backhaul {
                self.fill_uniform_ctx(k, covering, &mut ctx)?;
            }
            for (i, &bits) in size_bits.iter().enumerate() {
                if uniform_backhaul {
                    self.class_candidates_uniform(
                        user,
                        ModelId(i),
                        covering,
                        &ctx,
                        bits,
                        &mut pair_servers,
                    )?;
                } else {
                    self.class_candidates_exact(
                        user,
                        ModelId(i),
                        covering,
                        &mut direct,
                        &mut pair_servers,
                    )?;
                }
                pair_offsets.push(pair_servers.len());
            }
        }

        Ok(SparseEligibility::from_pair_candidates(
            m_count,
            k_count,
            i_count,
            pair_offsets,
            pair_servers,
        ))
    }

    /// Precomputed per-model download sizes in bits, exactly as
    /// [`LatencyEvaluator::latency_s`] derives them.
    fn model_size_bits(&self) -> Result<Vec<f64>, ScenarioError> {
        (0..self.library.num_models())
            .map(|i| Ok(self.library.model_size_bytes(ModelId(i))? as f64 * 8.0))
            .collect()
    }

    /// Loads the per-user radio context of the uniform-backhaul fast
    /// path: the covering servers' direct rates and the best of them.
    fn fill_uniform_ctx(
        &self,
        k: usize,
        covering: &[usize],
        ctx: &mut UniformUserCtx,
    ) -> Result<(), ScenarioError> {
        ctx.rates.clear();
        ctx.best_rate = 0.0;
        for &m in covering {
            let rate = self.rates.rate_bps(m, k)?;
            ctx.rates.push(rate);
            if rate > ctx.best_rate {
                ctx.best_rate = rate;
            }
        }
        Ok(())
    }

    /// Appends, in ascending server order, the candidate servers of one
    /// request class under a **uniform** backhaul mesh — the fast path
    /// shared by [`LatencyEvaluator::sparse_eligibility`] and the
    /// incremental [`LatencyEvaluator::refresh_sparse_users`].
    ///
    /// Bit-identical to probing every server through
    /// [`LatencyEvaluator::eligible`]: the direct test evaluates the same
    /// `size_bits / rate + inference` expression as Eq. (4), and because
    /// the relay transfer term of Eq. (5) is constant on a uniform mesh
    /// while float rounding is monotone, the minimum relayed latency is
    /// exactly the one through the best-rate covering server, evaluated
    /// with the same operation order as `latency_s`.
    fn class_candidates_uniform(
        &self,
        user: UserId,
        model: ModelId,
        covering: &[usize],
        ctx: &UniformUserCtx,
        size_bits: f64,
        out: &mut Vec<u32>,
    ) -> Result<(), ScenarioError> {
        let m_count = self.coverage.num_servers();
        let inference = self.demand.inference_s(user, model)?;
        let deadline = self.demand.deadline_s(user, model)?;
        let direct_eligible = |rate: f64| rate > 0.0 && size_bits / rate + inference <= deadline;
        // Non-covering servers all share Eq. (5)'s latency: constant
        // backhaul transfer plus the best direct leg.
        let relay_all = covering.len() < m_count && ctx.best_rate > 0.0 && {
            let backhaul_rate = self.backhaul.default_rate_bps();
            let transfer = if backhaul_rate.is_infinite() {
                0.0
            } else {
                size_bits / backhaul_rate
            };
            (transfer + size_bits / ctx.best_rate) + inference <= deadline
        };
        if relay_all {
            // Every non-covering server qualifies; covering servers
            // qualify when direct-eligible.
            let mut cover = covering.iter().zip(&ctx.rates).peekable();
            for m in 0..m_count {
                if let Some(&(&cm, &rate)) = cover.peek() {
                    if cm == m {
                        cover.next();
                        if direct_eligible(rate) {
                            out.push(m as u32);
                        }
                        continue;
                    }
                }
                out.push(m as u32);
            }
        } else {
            for (&m, &rate) in covering.iter().zip(&ctx.rates) {
                if direct_eligible(rate) {
                    out.push(m as u32);
                }
            }
        }
        Ok(())
    }

    /// Appends, in ascending server order, the candidate servers of one
    /// request class by probing every server individually — the exact
    /// fallback for heterogeneous (per-link override) backhaul meshes.
    fn class_candidates_exact(
        &self,
        user: UserId,
        model: ModelId,
        covering: &[usize],
        direct: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) -> Result<(), ScenarioError> {
        direct.clear();
        for &m in covering {
            if self.eligible(m, user, model)? {
                direct.push(m as u32);
            }
        }
        merge_candidates(self.coverage.num_servers(), covering, direct, out, |m| {
            self.eligible(m, user, model)
        })
    }

    /// Recomputes, in place, the eligibility rows of the given users in a
    /// dense tensor (every `(m, ·, i)` bit of those users, plus the
    /// per-server candidate summary). `users` must be ascending and
    /// deduplicated. The result is bit-identical to rebuilding the whole
    /// tensor with [`LatencyEvaluator::eligibility`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] when the tensor does
    /// not match this evaluator's dimensions and propagates point-query
    /// errors; the tensor is left unchanged on error.
    pub fn refresh_dense_users(
        &self,
        tensor: &mut EligibilityTensor,
        users: &[usize],
    ) -> Result<(), ScenarioError> {
        self.check_refresh_dims(
            tensor.num_servers(),
            tensor.num_users(),
            tensor.num_models(),
            users,
        )?;
        tensor.replace_user_rows(users, |m, k, i| self.eligible(m, UserId(k), ModelId(i)))
    }

    /// Recomputes, in place, the forward candidate rows of the given
    /// users in a sparse eligibility and patches the per-server reverse
    /// index accordingly. `users` must be ascending and deduplicated.
    /// The result is bit-identical to rebuilding the structure with
    /// [`LatencyEvaluator::sparse_eligibility`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] when the structure
    /// does not match this evaluator's dimensions and propagates
    /// point-query errors; the structure is left unchanged on error.
    pub fn refresh_sparse_users(
        &self,
        sparse: &mut SparseEligibility,
        users: &[usize],
    ) -> Result<(), ScenarioError> {
        self.check_refresh_dims(
            sparse.num_servers(),
            sparse.num_users(),
            sparse.num_models(),
            users,
        )?;
        let uniform_backhaul = !self.backhaul.has_overrides();
        let size_bits = self.model_size_bits()?;
        let mut direct: Vec<u32> = Vec::new();
        let mut ctx = UniformUserCtx::default();
        let mut ctx_user = usize::MAX;
        sparse.replace_user_rows(users, |k, i, out| {
            let user = UserId(k);
            let covering = self.coverage.servers_of_user(k)?;
            if covering.is_empty() {
                return Ok(());
            }
            if uniform_backhaul {
                if ctx_user != k {
                    self.fill_uniform_ctx(k, covering, &mut ctx)?;
                    ctx_user = k;
                }
                self.class_candidates_uniform(user, ModelId(i), covering, &ctx, size_bits[i], out)
            } else {
                self.class_candidates_exact(user, ModelId(i), covering, &mut direct, out)
            }
        })
    }

    /// Shared dimension validation of the refresh entry points.
    fn check_refresh_dims(
        &self,
        num_servers: usize,
        num_users: usize,
        num_models: usize,
        users: &[usize],
    ) -> Result<(), ScenarioError> {
        if num_servers != self.coverage.num_servers()
            || num_users != self.coverage.num_users()
            || num_models != self.library.num_models()
        {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "eligibility is {num_servers}x{num_users}x{num_models} but the evaluator \
                     covers {}x{}x{}",
                    self.coverage.num_servers(),
                    self.coverage.num_users(),
                    self.library.num_models()
                ),
            });
        }
        for &k in users {
            if k >= num_users {
                return Err(ScenarioError::IndexOutOfRange {
                    entity: "user",
                    index: k,
                    len: num_users,
                });
            }
        }
        debug_assert!(
            users.windows(2).all(|w| w[0] < w[1]),
            "refresh users must be ascending and deduplicated"
        );
        Ok(())
    }
}

/// Per-user scratch of the uniform-backhaul candidate fast path: the
/// covering servers' direct downlink rates (aligned with the covering
/// list) and the best of them, which realises the minimum relayed
/// latency of Eq. (5) when every backhaul link has the same rate.
#[derive(Debug, Default)]
struct UniformUserCtx {
    rates: Vec<f64>,
    best_rate: f64,
}

/// Appends, in ascending server order, the candidate servers of one
/// request class: covering servers contribute when direct-eligible
/// (`direct`, sorted ascending), non-covering servers when
/// `include_non_covering` says so.
fn merge_candidates<F>(
    m_count: usize,
    covering: &[usize],
    direct: &[u32],
    pair_servers: &mut Vec<u32>,
    mut include_non_covering: F,
) -> Result<(), ScenarioError>
where
    F: FnMut(usize) -> Result<bool, ScenarioError>,
{
    let mut cover_iter = covering.iter().peekable();
    let mut direct_iter = direct.iter().peekable();
    for m in 0..m_count {
        if cover_iter.peek() == Some(&&m) {
            cover_iter.next();
            if direct_iter.peek() == Some(&&(m as u32)) {
                direct_iter.next();
                pair_servers.push(m as u32);
            }
        } else if include_non_covering(m)? {
            pair_servers.push(m as u32);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trimcaching_modellib::builders::SpecialCaseBuilder;
    use trimcaching_wireless::geometry::Point;

    struct Fixture {
        library: ModelLibrary,
        demand: Demand,
        coverage: CoverageMap,
        backhaul: Backhaul,
        rates: RateMatrix,
        params: RadioParams,
    }

    fn fixture() -> Fixture {
        let params = RadioParams::paper_defaults();
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(1);
        let servers = vec![Point::new(0.0, 0.0), Point::new(600.0, 0.0)];
        let users = vec![
            Point::new(50.0, 0.0),    // near server 0
            Point::new(620.0, 0.0),   // near server 1
            Point::new(900.0, 900.0), // uncovered
        ];
        let coverage = CoverageMap::build(&users, &servers, params.coverage_radius_m).unwrap();
        let allocation = PerUserAllocation::compute(&coverage, &params).unwrap();
        let rates = RateMatrix::expected(&coverage, &allocation, &params).unwrap();
        let backhaul = Backhaul::paper_default(2);
        let mut rng = StdRng::seed_from_u64(2);
        let demand = DemandConfig::paper_defaults()
            .generate(3, library.num_models(), &mut rng)
            .unwrap();
        Fixture {
            library,
            demand,
            coverage,
            backhaul,
            rates,
            params,
        }
    }

    #[test]
    fn rate_matrix_is_zero_outside_coverage() {
        let f = fixture();
        assert_eq!(f.rates.num_servers(), 2);
        assert_eq!(f.rates.num_users(), 3);
        assert!(f.rates.rate_bps(0, 0).unwrap() > 0.0);
        assert_eq!(f.rates.rate_bps(0, 1).unwrap(), 0.0);
        assert_eq!(f.rates.rate_bps(1, 2).unwrap(), 0.0);
        assert!(f.rates.rate_bps(2, 0).is_err());
        assert!(f.rates.rate_bps(0, 9).is_err());
    }

    #[test]
    fn rate_matrix_stores_only_covered_pairs() {
        let f = fixture();
        // Server 0 covers user 0, server 1 covers user 1; user 2 is
        // uncovered: two stored entries instead of a dense 2 x 3 = 6.
        assert_eq!(f.rates.num_covered_pairs(), 2);
        let row0: Vec<(usize, f64)> = f.rates.covered_rates(0).unwrap().collect();
        assert_eq!(row0.len(), 1);
        assert_eq!(row0[0].0, 0);
        assert_eq!(row0[0].1, f.rates.rate_bps(0, 0).unwrap());
        let row1: Vec<(usize, f64)> = f.rates.covered_rates(1).unwrap().collect();
        assert_eq!(row1, vec![(1, f.rates.rate_bps(1, 1).unwrap())]);
        assert!(f.rates.covered_rates(5).is_err());
    }

    #[test]
    fn fading_reduces_or_keeps_rates() {
        let f = fixture();
        let alloc = PerUserAllocation::compute(&f.coverage, &f.params).unwrap();
        let faded = RateMatrix::with_fading(&f.coverage, &alloc, &f.params, |_m, _k| 0.25).unwrap();
        assert!(faded.rate_bps(0, 0).unwrap() < f.rates.rate_bps(0, 0).unwrap());
    }

    #[test]
    fn associated_latency_uses_direct_rate() {
        let f = fixture();
        let eval = LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &f.backhaul, &f.rates)
            .unwrap();
        let model = ModelId(0);
        let latency = eval.latency_s(0, UserId(0), model).unwrap();
        let expected = f.library.model_size_bytes(model).unwrap() as f64 * 8.0
            / f.rates.rate_bps(0, 0).unwrap()
            + f.demand.inference_s(UserId(0), model).unwrap();
        assert!((latency - expected).abs() < 1e-9);
    }

    #[test]
    fn relayed_latency_adds_backhaul_transfer() {
        let f = fixture();
        let eval = LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &f.backhaul, &f.rates)
            .unwrap();
        let model = ModelId(0);
        // Server 1 does not cover user 0, so delivery relays through server 0.
        let relayed = eval.latency_s(1, UserId(0), model).unwrap();
        let direct = eval.latency_s(0, UserId(0), model).unwrap();
        assert!(relayed > direct);
        let size_bits = f.library.model_size_bytes(model).unwrap() as f64 * 8.0;
        let expected = size_bits / f.backhaul.rate_bps(1, 0).unwrap()
            + size_bits / f.rates.rate_bps(0, 0).unwrap()
            + f.demand.inference_s(UserId(0), model).unwrap();
        assert!((relayed - expected).abs() < 1e-9);
    }

    #[test]
    fn uncovered_users_are_never_eligible() {
        let f = fixture();
        let eval = LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &f.backhaul, &f.rates)
            .unwrap();
        for m in 0..2 {
            assert!(eval
                .latency_s(m, UserId(2), ModelId(0))
                .unwrap()
                .is_infinite());
            assert!(!eval.eligible(m, UserId(2), ModelId(0)).unwrap());
        }
    }

    #[test]
    fn eligibility_tensor_matches_pointwise_queries() {
        let f = fixture();
        let eval = LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &f.backhaul, &f.rates)
            .unwrap();
        let tensor = eval.eligibility().unwrap();
        assert_eq!(tensor.num_servers(), 2);
        assert_eq!(tensor.num_users(), 3);
        assert_eq!(tensor.num_models(), f.library.num_models());
        for m in 0..2 {
            for k in 0..3 {
                for i in 0..f.library.num_models() {
                    assert_eq!(
                        tensor.eligible(m, UserId(k), ModelId(i)),
                        eval.eligible(m, UserId(k), ModelId(i)).unwrap()
                    );
                }
            }
        }
        // Near users must be served by their own server within 1 s budgets
        // for at least one (small) model under the paper's rates.
        assert!(tensor.num_eligible() > 0);
        // Out-of-range lookups are simply false.
        assert!(!tensor.eligible(9, UserId(0), ModelId(0)));
        assert!(!tensor.eligible(0, UserId(9), ModelId(0)));
        assert!(!tensor.eligible(0, UserId(0), ModelId(999)));
    }

    #[test]
    fn sparse_eligibility_matches_the_dense_tensor() {
        let f = fixture();
        let eval = LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &f.backhaul, &f.rates)
            .unwrap();
        let dense = eval.eligibility().unwrap();
        let sparse = eval.sparse_eligibility().unwrap();
        assert_eq!(sparse.num_servers(), dense.num_servers());
        assert_eq!(sparse.num_users(), dense.num_users());
        assert_eq!(sparse.num_models(), dense.num_models());
        assert_eq!(sparse.num_eligible(), dense.num_eligible());
        for m in 0..2 {
            for k in 0..3 {
                for i in 0..f.library.num_models() {
                    assert_eq!(
                        sparse.eligible(m, UserId(k), ModelId(i)),
                        dense.eligible(m, UserId(k), ModelId(i)),
                        "disagreement at ({m},{k},{i})"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_eligibility_handles_backhaul_overrides_exactly() {
        let f = fixture();
        // Throttle one directed link so non-covering servers are no longer
        // interchangeable: the exact fallback must still agree with the
        // dense tensor.
        let mut backhaul = Backhaul::paper_default(2);
        backhaul.set_link_rate(1, 0, 1.0e6).unwrap();
        let eval =
            LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &backhaul, &f.rates).unwrap();
        let dense = eval.eligibility().unwrap();
        let sparse = eval.sparse_eligibility().unwrap();
        assert_eq!(sparse.num_eligible(), dense.num_eligible());
        for m in 0..2 {
            for k in 0..3 {
                for i in 0..f.library.num_models() {
                    assert_eq!(
                        sparse.eligible(m, UserId(k), ModelId(i)),
                        dense.eligible(m, UserId(k), ModelId(i)),
                        "override disagreement at ({m},{k},{i})"
                    );
                }
            }
        }
    }

    #[test]
    fn from_fn_builds_custom_tensors() {
        let t = EligibilityTensor::from_fn(2, 2, 2, |m, k, i| m == 0 && k == i);
        assert!(t.eligible(0, UserId(0), ModelId(0)));
        assert!(t.eligible(0, UserId(1), ModelId(1)));
        assert!(!t.eligible(1, UserId(0), ModelId(0)));
        assert_eq!(t.num_eligible(), 2);
    }

    #[test]
    fn evaluator_rejects_inconsistent_components() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        // Demand over the wrong number of models.
        let bad_demand = DemandConfig::paper_defaults()
            .generate(3, 2, &mut rng)
            .unwrap();
        assert!(
            LatencyEvaluator::new(&f.library, &bad_demand, &f.coverage, &f.backhaul, &f.rates)
                .is_err()
        );
        // Backhaul with the wrong number of servers.
        let bad_backhaul = Backhaul::paper_default(5);
        assert!(
            LatencyEvaluator::new(&f.library, &f.demand, &f.coverage, &bad_backhaul, &f.rates)
                .is_err()
        );
        // Demand over the wrong number of users.
        let bad_users = DemandConfig::paper_defaults()
            .generate(2, f.library.num_models(), &mut rng)
            .unwrap();
        assert!(
            LatencyEvaluator::new(&f.library, &bad_users, &f.coverage, &f.backhaul, &f.rates)
                .is_err()
        );
    }
}
