//! TrimCaching system model: the scenario layer between the wireless /
//! model-library substrates and the placement algorithms.
//!
//! This crate implements Sections III and IV of the paper:
//!
//! * [`entities`] — edge servers (with storage capacities `Q_m`) and users;
//! * [`demand`] — request probabilities `p_{k,i}`, QoS budgets `T̄_{k,i}`
//!   and on-device inference latencies `t_{k,i}`;
//! * [`latency`] — the downlink rate matrix (row-compressed to covered
//!   pairs), end-to-end latency of Eqs. (4)–(5) and the constructors of
//!   the service-eligibility indicator `I1(m,k,i)`;
//! * [`eligibility`] — the [`EligibilityView`] trait and its two
//!   representations (see below);
//! * [`placement`] — the decision variables `x_{m,i}` (and their block-level
//!   view `y_{m,j}`);
//! * [`storage`] — shared-storage accounting `g_m` of Eq. (7) with
//!   incremental (marginal-cost) updates;
//! * [`objective`] — the expected cache-hit-ratio objective `U(X)` of
//!   Eq. (2) and its marginal gains;
//! * [`mobility`] — the pedestrian/bike/vehicle mobility models of the
//!   Fig. 7 robustness study;
//! * [`scenario`] — the [`Scenario`] aggregate and its builder.
//!
//! # Eligibility representations
//!
//! The indicator `I1(m,k,i)` is consumed everywhere through the
//! [`EligibilityView`] trait, which has two implementations selected by
//! [`eligibility::EligibilityRepr`] on the builder:
//!
//! * **Dense** ([`EligibilityTensor`]) — the full `M × K × I` cube.
//!   `O(1)` point queries and trivially cache-friendly scans; memory is
//!   `M · K · I` bytes, fine for paper-scale snapshots (10 servers × 30
//!   users × 30 models) and exhaustive/small-instance work.
//! * **Sparse** ([`eligibility::SparseEligibility`]) — coverage-pruned
//!   CSR: per request class `(k, i)` a sorted candidate-server list, plus
//!   a per-server model-major reverse index of eligible users. Memory
//!   follows the number of eligible triples — in city-scale deployments
//!   (1000+ servers, each user covered by a handful) orders of magnitude
//!   below the cube, and marginal-gain loops walk only eligible triples.
//!
//! `Auto` (the default) resolves to **Sparse** when at most
//! [`eligibility::EligibilityRepr::AUTO_COVERAGE_THRESHOLD`] (10%) of
//! `(server, user)` pairs are covered, or when the cube would exceed
//! [`eligibility::EligibilityRepr::AUTO_CELL_LIMIT`] cells (≈ 4 Mi)
//! while coverage stays below
//! [`eligibility::EligibilityRepr::AUTO_COVERAGE_CEILING`] (50% — above
//! that the CSR's ~8 bytes per eligible triple would outgrow the cube's
//! 1 byte per cell); **Dense** otherwise. Both paths yield indices in
//! ascending order, so hit ratios and marginal gains are bit-identical
//! across representations.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use trimcaching_modellib::builders::SpecialCaseBuilder;
//! use trimcaching_scenario::prelude::*;
//! use trimcaching_wireless::geometry::Point;
//!
//! # fn main() -> Result<(), trimcaching_scenario::ScenarioError> {
//! let library = SpecialCaseBuilder::paper_setup().models_per_backbone(2).build(1);
//! let mut rng = StdRng::seed_from_u64(7);
//! let demand = DemandConfig::paper_defaults().generate(4, library.num_models(), &mut rng)?;
//! let scenario = Scenario::builder()
//!     .library(library)
//!     .servers(vec![EdgeServer::new(ServerId(0), Point::new(500.0, 500.0), gigabytes(1.0))?])
//!     .users_at(&[
//!         Point::new(450.0, 500.0),
//!         Point::new(550.0, 520.0),
//!         Point::new(480.0, 470.0),
//!         Point::new(530.0, 540.0),
//!     ])
//!     .demand(demand)
//!     .build()?;
//! let mut placement = scenario.empty_placement();
//! placement.place(ServerId(0), trimcaching_modellib::ModelId(0))?;
//! assert!(scenario.hit_ratio(&placement) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_view;
pub mod delta;
pub mod demand;
pub mod eligibility;
pub mod entities;
pub mod error;
pub mod latency;
pub mod mobility;
pub mod objective;
pub mod placement;
pub mod scenario;
pub mod storage;

pub use block_view::BlockPlacement;
pub use delta::SnapshotDelta;
pub use demand::{Demand, DemandConfig, DemandEstimate, DemandView};
pub use eligibility::{
    Eligibility, EligibilityRepr, EligibilityTensor, EligibilityView, MaskedEligibility,
    SparseEligibility,
};
pub use entities::{gigabytes, EdgeServer, ServerId, User, UserId};
pub use error::ScenarioError;
pub use latency::{LatencyEvaluator, RateMatrix};
pub use mobility::{CommuterFlow, MobilityClass, MobilityModel};
pub use objective::HitRatioObjective;
pub use placement::Placement;
pub use scenario::{Scenario, ScenarioBuilder};
pub use storage::StorageTracker;

/// Convenient glob-import of the most common scenario types.
pub mod prelude {
    pub use crate::block_view::BlockPlacement;
    pub use crate::delta::SnapshotDelta;
    pub use crate::demand::{Demand, DemandConfig, DemandEstimate, DemandView};
    pub use crate::eligibility::{
        Eligibility, EligibilityRepr, EligibilityTensor, EligibilityView, MaskedEligibility,
        SparseEligibility,
    };
    pub use crate::entities::{gigabytes, EdgeServer, ServerId, User, UserId};
    pub use crate::error::ScenarioError;
    pub use crate::mobility::{CommuterFlow, MobilityClass, MobilityModel};
    pub use crate::objective::HitRatioObjective;
    pub use crate::placement::Placement;
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use crate::storage::StorageTracker;
}
