//! User mobility models (Section VII-E).
//!
//! The robustness study of Fig. 7 moves users for two hours with three
//! mobility classes:
//!
//! | class | initial speed (m/s) | accel. per slot (m/s²) | angular velocity (rad/s) |
//! |-------|---------------------|------------------------|--------------------------|
//! | pedestrian | `[0.5, 1.8]` | `[-0.3, 0.3]` | `[-π/4, π/4]` |
//! | bike       | `[2, 8]`     | `[-1, 1]`     | `[-π/3, π/3]` |
//! | vehicle    | `[5.5, 20]`  | `[-3, 3]`     | `[-π/2, π/2]` |
//!
//! Initial orientations are uniform in `[0, π]`; users update their speed
//! and orientation at the start of every 5-second slot and are kept inside
//! the deployment area by reflecting at its border.

use std::f64::consts::PI;

use rand::Rng;
use serde::{Deserialize, Serialize};

use trimcaching_wireless::geometry::{DeploymentArea, Point};

/// The paper's slot length for the mobility study, in seconds.
pub const PAPER_SLOT_SECONDS: f64 = 5.0;

/// Mobility class of a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityClass {
    /// Walking users.
    Pedestrian,
    /// Cyclists.
    Bike,
    /// Cars and similar vehicles.
    Vehicle,
}

impl MobilityClass {
    /// Inclusive range of initial speeds in m/s.
    pub fn initial_speed_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (0.5, 1.8),
            MobilityClass::Bike => (2.0, 8.0),
            MobilityClass::Vehicle => (5.5, 20.0),
        }
    }

    /// Inclusive range of per-slot accelerations in m/s².
    pub fn acceleration_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (-0.3, 0.3),
            MobilityClass::Bike => (-1.0, 1.0),
            MobilityClass::Vehicle => (-3.0, 3.0),
        }
    }

    /// Inclusive range of angular velocities in rad/s.
    pub fn angular_velocity_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (-PI / 4.0, PI / 4.0),
            MobilityClass::Bike => (-PI / 3.0, PI / 3.0),
            MobilityClass::Vehicle => (-PI / 2.0, PI / 2.0),
        }
    }

    /// All three classes in a fixed order (used to assign classes round
    /// robin as the paper mixes "pedestrians, bikes, and vehicles").
    pub fn all() -> [MobilityClass; 3] {
        [
            MobilityClass::Pedestrian,
            MobilityClass::Bike,
            MobilityClass::Vehicle,
        ]
    }
}

/// The kinematic state of one mobile user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileUser {
    /// Current position.
    pub position: Point,
    /// Current speed in m/s (non-negative).
    pub speed_mps: f64,
    /// Current heading in radians.
    pub orientation_rad: f64,
    /// Mobility class.
    pub class: MobilityClass,
}

/// A mobility simulation over a set of users inside a deployment area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityModel {
    area: DeploymentArea,
    slot_seconds: f64,
    users: Vec<MobileUser>,
    elapsed_seconds: f64,
}

impl MobilityModel {
    /// Creates a mobility model with the paper's configuration: users are
    /// assigned to the three classes round-robin, initial speeds and
    /// orientations are drawn from the per-class ranges, and the slot
    /// length is 5 s.
    pub fn paper_mix<R: Rng + ?Sized>(
        initial_positions: &[Point],
        area: DeploymentArea,
        rng: &mut R,
    ) -> Self {
        let classes = MobilityClass::all();
        let users = initial_positions
            .iter()
            .enumerate()
            .map(|(idx, &position)| {
                let class = classes[idx % classes.len()];
                let (lo, hi) = class.initial_speed_range();
                MobileUser {
                    position,
                    speed_mps: rng.gen_range(lo..=hi),
                    orientation_rad: rng.gen_range(0.0..=PI),
                    class,
                }
            })
            .collect();
        Self {
            area,
            slot_seconds: PAPER_SLOT_SECONDS,
            users,
            elapsed_seconds: 0.0,
        }
    }

    /// Creates a mobility model from explicit user states and slot length.
    ///
    /// # Panics
    ///
    /// Panics if `slot_seconds` is not strictly positive and finite.
    pub fn new(users: Vec<MobileUser>, area: DeploymentArea, slot_seconds: f64) -> Self {
        assert!(
            slot_seconds.is_finite() && slot_seconds > 0.0,
            "slot length must be positive"
        );
        Self {
            area,
            slot_seconds,
            users,
            elapsed_seconds: 0.0,
        }
    }

    /// The slot length in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.slot_seconds
    }

    /// Total simulated time so far in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_seconds
    }

    /// Current user states.
    pub fn users(&self) -> &[MobileUser] {
        &self.users
    }

    /// Current user positions, in user order.
    pub fn positions(&self) -> Vec<Point> {
        self.users.iter().map(|u| u.position).collect()
    }

    /// Replaces user `k`'s kinematic state — how a region-sharded run
    /// hands a migrating user's kinematics from its old owner shard to
    /// its new one.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] when `k` is not a user
    /// of this model.
    ///
    /// [`ScenarioError::IndexOutOfRange`]: crate::ScenarioError::IndexOutOfRange
    pub fn set_user(&mut self, k: usize, user: MobileUser) -> Result<(), crate::ScenarioError> {
        match self.users.get_mut(k) {
            Some(slot) => {
                *slot = user;
                Ok(())
            }
            None => Err(crate::ScenarioError::IndexOutOfRange {
                entity: "mobility user",
                index: k,
                len: self.users.len(),
            }),
        }
    }

    /// Advances the simulation by one slot: each user draws a fresh
    /// acceleration and angular velocity, updates speed and heading, then
    /// moves for one slot and reflects off the area border.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let dt = self.slot_seconds;
        let side = self.area.side_m();
        for user in &mut self.users {
            let (alo, ahi) = user.class.acceleration_range();
            let (wlo, whi) = user.class.angular_velocity_range();
            let acceleration = rng.gen_range(alo..=ahi);
            let angular_velocity = rng.gen_range(wlo..=whi);
            user.speed_mps = (user.speed_mps + acceleration * dt).max(0.0);
            user.orientation_rad += angular_velocity * dt;
            let mut x = user.position.x + user.speed_mps * dt * user.orientation_rad.cos();
            let mut y = user.position.y + user.speed_mps * dt * user.orientation_rad.sin();
            // Reflect off the borders (possibly repeatedly for fast users).
            let reflect = |v: f64| -> f64 {
                let period = 2.0 * side;
                let mut w = v.rem_euclid(period);
                if w > side {
                    w = period - w;
                }
                w
            };
            x = reflect(x);
            y = reflect(y);
            user.position = Point::new(x, y);
        }
        self.elapsed_seconds += dt;
    }

    /// Advances the simulation by `n` slots and returns the resulting
    /// positions.
    pub fn run_slots<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<Point> {
        for _ in 0..n {
            self.step(rng);
        }
        self.positions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn start_positions(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(100.0 + 10.0 * i as f64, 200.0))
            .collect()
    }

    #[test]
    fn class_parameter_ranges_match_the_paper() {
        assert_eq!(MobilityClass::Pedestrian.initial_speed_range(), (0.5, 1.8));
        assert_eq!(MobilityClass::Bike.initial_speed_range(), (2.0, 8.0));
        assert_eq!(MobilityClass::Vehicle.initial_speed_range(), (5.5, 20.0));
        assert_eq!(MobilityClass::Pedestrian.acceleration_range(), (-0.3, 0.3));
        assert_eq!(MobilityClass::Vehicle.acceleration_range(), (-3.0, 3.0));
        let (lo, hi) = MobilityClass::Bike.angular_velocity_range();
        assert!((lo + PI / 3.0).abs() < 1e-12 && (hi - PI / 3.0).abs() < 1e-12);
        assert_eq!(MobilityClass::all().len(), 3);
        assert_eq!(PAPER_SLOT_SECONDS, 5.0);
    }

    #[test]
    fn paper_mix_assigns_classes_round_robin() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = MobilityModel::paper_mix(
            &start_positions(7),
            DeploymentArea::paper_default(),
            &mut rng,
        );
        let classes: Vec<_> = model.users().iter().map(|u| u.class).collect();
        assert_eq!(classes[0], MobilityClass::Pedestrian);
        assert_eq!(classes[1], MobilityClass::Bike);
        assert_eq!(classes[2], MobilityClass::Vehicle);
        assert_eq!(classes[3], MobilityClass::Pedestrian);
        for u in model.users() {
            let (lo, hi) = u.class.initial_speed_range();
            assert!(u.speed_mps >= lo && u.speed_mps <= hi);
            assert!(u.orientation_rad >= 0.0 && u.orientation_rad <= PI);
        }
        assert_eq!(model.slot_seconds(), 5.0);
        assert_eq!(model.elapsed_seconds(), 0.0);
    }

    #[test]
    fn users_stay_inside_the_area_for_two_hours() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = MobilityModel::paper_mix(&start_positions(12), area, &mut rng);
        // Two hours of 5-second slots, as in Fig. 7.
        let slots = (2.0 * 3600.0 / PAPER_SLOT_SECONDS) as usize;
        for _ in 0..slots {
            model.step(&mut rng);
            for u in model.users() {
                assert!(area.contains(u.position), "user escaped: {:?}", u.position);
                assert!(u.speed_mps >= 0.0);
            }
        }
        assert!((model.elapsed_seconds() - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn positions_actually_change_over_time() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let start = start_positions(6);
        let mut model = MobilityModel::paper_mix(&start, area, &mut rng);
        let after = model.run_slots(24, &mut rng); // two minutes
        let moved = start
            .iter()
            .zip(&after)
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(moved >= 5, "only {moved} users moved");
    }

    #[test]
    fn vehicles_move_farther_than_pedestrians_on_average() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        let start = start_positions(30);
        let mut model = MobilityModel::paper_mix(&start, area, &mut rng);
        // A handful of slots, short enough that border reflections are rare.
        model.run_slots(6, &mut rng);
        let mut ped = Vec::new();
        let mut veh = Vec::new();
        for (u, s) in model.users().iter().zip(&start) {
            let d = u.position.distance(*s);
            match u.class {
                MobilityClass::Pedestrian => ped.push(d),
                MobilityClass::Vehicle => veh.push(d),
                MobilityClass::Bike => {}
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&veh) > avg(&ped),
            "vehicles ({}) should outrun pedestrians ({})",
            avg(&veh),
            avg(&ped)
        );
    }

    #[test]
    fn explicit_construction_and_reflection() {
        let area = DeploymentArea::new(100.0).unwrap();
        // A fast user heading straight for the border.
        let user = MobileUser {
            position: Point::new(95.0, 50.0),
            speed_mps: 10.0,
            orientation_rad: 0.0,
            class: MobilityClass::Vehicle,
        };
        let mut model = MobilityModel::new(vec![user], area, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        model.step(&mut rng);
        let p = model.positions()[0];
        assert!(area.contains(p));
    }

    #[test]
    #[should_panic(expected = "slot length")]
    fn zero_slot_length_panics() {
        let _ = MobilityModel::new(vec![], DeploymentArea::paper_default(), 0.0);
    }
}
