//! User mobility models (Section VII-E).
//!
//! The robustness study of Fig. 7 moves users for two hours with three
//! mobility classes:
//!
//! | class | initial speed (m/s) | accel. per slot (m/s²) | angular velocity (rad/s) |
//! |-------|---------------------|------------------------|--------------------------|
//! | pedestrian | `[0.5, 1.8]` | `[-0.3, 0.3]` | `[-π/4, π/4]` |
//! | bike       | `[2, 8]`     | `[-1, 1]`     | `[-π/3, π/3]` |
//! | vehicle    | `[5.5, 20]`  | `[-3, 3]`     | `[-π/2, π/2]` |
//!
//! Initial orientations are uniform in `[0, π]`; users update their speed
//! and orientation at the start of every 5-second slot and are kept inside
//! the deployment area by reflecting at its border.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use trimcaching_wireless::geometry::{DeploymentArea, Point};

/// The paper's slot length for the mobility study, in seconds.
pub const PAPER_SLOT_SECONDS: f64 = 5.0;

/// Mobility class of a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityClass {
    /// Walking users.
    Pedestrian,
    /// Cyclists.
    Bike,
    /// Cars and similar vehicles.
    Vehicle,
}

impl MobilityClass {
    /// Inclusive range of initial speeds in m/s.
    pub fn initial_speed_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (0.5, 1.8),
            MobilityClass::Bike => (2.0, 8.0),
            MobilityClass::Vehicle => (5.5, 20.0),
        }
    }

    /// Inclusive range of per-slot accelerations in m/s².
    pub fn acceleration_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (-0.3, 0.3),
            MobilityClass::Bike => (-1.0, 1.0),
            MobilityClass::Vehicle => (-3.0, 3.0),
        }
    }

    /// Inclusive range of angular velocities in rad/s.
    pub fn angular_velocity_range(self) -> (f64, f64) {
        match self {
            MobilityClass::Pedestrian => (-PI / 4.0, PI / 4.0),
            MobilityClass::Bike => (-PI / 3.0, PI / 3.0),
            MobilityClass::Vehicle => (-PI / 2.0, PI / 2.0),
        }
    }

    /// All three classes in a fixed order (used to assign classes round
    /// robin as the paper mixes "pedestrians, bikes, and vehicles").
    pub fn all() -> [MobilityClass; 3] {
        [
            MobilityClass::Pedestrian,
            MobilityClass::Bike,
            MobilityClass::Vehicle,
        ]
    }
}

/// The kinematic state of one mobile user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileUser {
    /// Current position.
    pub position: Point,
    /// Current speed in m/s (non-negative).
    pub speed_mps: f64,
    /// Current heading in radians.
    pub orientation_rad: f64,
    /// Mobility class.
    pub class: MobilityClass,
}

/// A mobility simulation over a set of users inside a deployment area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityModel {
    area: DeploymentArea,
    slot_seconds: f64,
    users: Vec<MobileUser>,
    elapsed_seconds: f64,
}

impl MobilityModel {
    /// Creates a mobility model with the paper's configuration: users are
    /// assigned to the three classes round-robin, initial speeds and
    /// orientations are drawn from the per-class ranges, and the slot
    /// length is 5 s.
    pub fn paper_mix<R: Rng + ?Sized>(
        initial_positions: &[Point],
        area: DeploymentArea,
        rng: &mut R,
    ) -> Self {
        let classes = MobilityClass::all();
        let users = initial_positions
            .iter()
            .enumerate()
            .map(|(idx, &position)| {
                let class = classes[idx % classes.len()];
                let (lo, hi) = class.initial_speed_range();
                MobileUser {
                    position,
                    speed_mps: rng.gen_range(lo..=hi),
                    orientation_rad: rng.gen_range(0.0..=PI),
                    class,
                }
            })
            .collect();
        Self {
            area,
            slot_seconds: PAPER_SLOT_SECONDS,
            users,
            elapsed_seconds: 0.0,
        }
    }

    /// Creates a mobility model from explicit user states and slot length.
    ///
    /// # Panics
    ///
    /// Panics if `slot_seconds` is not strictly positive and finite.
    pub fn new(users: Vec<MobileUser>, area: DeploymentArea, slot_seconds: f64) -> Self {
        assert!(
            slot_seconds.is_finite() && slot_seconds > 0.0,
            "slot length must be positive"
        );
        Self {
            area,
            slot_seconds,
            users,
            elapsed_seconds: 0.0,
        }
    }

    /// The slot length in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.slot_seconds
    }

    /// Total simulated time so far in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_seconds
    }

    /// Current user states.
    pub fn users(&self) -> &[MobileUser] {
        &self.users
    }

    /// Current user positions, in user order.
    pub fn positions(&self) -> Vec<Point> {
        self.users.iter().map(|u| u.position).collect()
    }

    /// Replaces user `k`'s kinematic state — how a region-sharded run
    /// hands a migrating user's kinematics from its old owner shard to
    /// its new one.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] when `k` is not a user
    /// of this model.
    ///
    /// [`ScenarioError::IndexOutOfRange`]: crate::ScenarioError::IndexOutOfRange
    pub fn set_user(&mut self, k: usize, user: MobileUser) -> Result<(), crate::ScenarioError> {
        match self.users.get_mut(k) {
            Some(slot) => {
                *slot = user;
                Ok(())
            }
            None => Err(crate::ScenarioError::IndexOutOfRange {
                entity: "mobility user",
                index: k,
                len: self.users.len(),
            }),
        }
    }

    /// Advances the simulation by one slot: each user draws a fresh
    /// acceleration and angular velocity, updates speed and heading, then
    /// moves for one slot and reflects off the area border.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let dt = self.slot_seconds;
        let side = self.area.side_m();
        for user in &mut self.users {
            let (alo, ahi) = user.class.acceleration_range();
            let (wlo, whi) = user.class.angular_velocity_range();
            let acceleration = rng.gen_range(alo..=ahi);
            let angular_velocity = rng.gen_range(wlo..=whi);
            user.speed_mps = (user.speed_mps + acceleration * dt).max(0.0);
            user.orientation_rad += angular_velocity * dt;
            let mut x = user.position.x + user.speed_mps * dt * user.orientation_rad.cos();
            let mut y = user.position.y + user.speed_mps * dt * user.orientation_rad.sin();
            // Reflect off the borders (possibly repeatedly for fast users).
            let reflect = |v: f64| -> f64 {
                let period = 2.0 * side;
                let mut w = v.rem_euclid(period);
                if w > side {
                    w = period - w;
                }
                w
            };
            x = reflect(x);
            y = reflect(y);
            user.position = Point::new(x, y);
        }
        self.elapsed_seconds += dt;
    }

    /// Advances the simulation by `n` slots and returns the resulting
    /// positions.
    pub fn run_slots<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<Point> {
        for _ in 0..n {
            self.step(rng);
        }
        self.positions()
    }
}

/// Directed commuter mobility: every user owns a *home* anchor in the
/// western residential band of the area (`x ∈ [0, 0.4·side]`) and a
/// *work* anchor in the eastern business band (`x ∈ [0.6·side, side]`),
/// both drawn once from the construction seed. Users start at home and
/// alternate commutes: during even half-periods everyone travels toward
/// work, during odd half-periods back toward home, each at a constant
/// per-user speed drawn from their mobility class's initial range and
/// clamped to never overshoot the target. Unlike [`MobilityModel`],
/// stepping consumes **no** randomness — the whole trajectory is a pure
/// function of `(num_users, area, half_period_s, seed)` — which is what
/// lets sweep cells replay commuter scenarios byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommuterFlow {
    area: DeploymentArea,
    half_period_s: f64,
    homes: Vec<Point>,
    works: Vec<Point>,
    speeds_mps: Vec<f64>,
    classes: Vec<MobilityClass>,
    positions: Vec<Point>,
    elapsed_seconds: f64,
}

impl CommuterFlow {
    /// Fraction of the area side covered by the residential band.
    const HOME_BAND: f64 = 0.4;
    /// Western edge of the business band, as a fraction of the side.
    const WORK_BAND_START: f64 = 0.6;

    /// Builds a commuter flow of `num_users` users inside `area`,
    /// switching commute direction every `half_period_s` seconds.
    /// Classes are assigned round-robin like [`MobilityModel::paper_mix`];
    /// anchors and speeds are drawn from a [`StdRng`] seeded with a
    /// salted `seed`, so equal arguments give equal flows.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidValue`] when `half_period_s` is
    /// not strictly positive and finite.
    ///
    /// [`ScenarioError::InvalidValue`]: crate::ScenarioError::InvalidValue
    pub fn new(
        num_users: usize,
        area: DeploymentArea,
        half_period_s: f64,
        seed: u64,
    ) -> Result<Self, crate::ScenarioError> {
        if !(half_period_s.is_finite() && half_period_s > 0.0) {
            return Err(crate::ScenarioError::InvalidValue {
                name: "half_period_s",
                value: half_period_s,
            });
        }
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(0xE703_7ED1_A0B4_28DB),
        );
        let side = area.side_m();
        let classes_cycle = MobilityClass::all();
        let mut homes = Vec::with_capacity(num_users);
        let mut works = Vec::with_capacity(num_users);
        let mut speeds = Vec::with_capacity(num_users);
        let mut classes = Vec::with_capacity(num_users);
        for idx in 0..num_users {
            let class = classes_cycle[idx % classes_cycle.len()];
            homes.push(Point::new(
                rng.gen_range(0.0..=Self::HOME_BAND * side),
                rng.gen_range(0.0..=side),
            ));
            works.push(Point::new(
                rng.gen_range(Self::WORK_BAND_START * side..=side),
                rng.gen_range(0.0..=side),
            ));
            let (lo, hi) = class.initial_speed_range();
            speeds.push(rng.gen_range(lo..=hi));
            classes.push(class);
        }
        Ok(Self {
            area,
            half_period_s,
            positions: homes.clone(),
            homes,
            works,
            speeds_mps: speeds,
            classes,
            elapsed_seconds: 0.0,
        })
    }

    /// Home anchors, in user order (also the initial positions).
    pub fn homes(&self) -> &[Point] {
        &self.homes
    }

    /// Work anchors, in user order.
    pub fn works(&self) -> &[Point] {
        &self.works
    }

    /// Mobility classes, in user order.
    pub fn classes(&self) -> &[MobilityClass] {
        &self.classes
    }

    /// Current positions, in user order.
    pub fn positions(&self) -> Vec<Point> {
        self.positions.clone()
    }

    /// Total simulated time so far in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_seconds
    }

    /// The half-period in seconds (one one-way commute window).
    pub fn half_period_s(&self) -> f64 {
        self.half_period_s
    }

    /// `0` while the flow heads for work, `1` while it heads home.
    pub fn phase(&self) -> usize {
        (self.elapsed_seconds / self.half_period_s) as usize % 2
    }

    /// Advances every user by `dt` seconds toward their current target
    /// (work during even half-periods, home during odd ones), clamped so
    /// nobody overshoots. Deterministic: no randomness is consumed.
    pub fn step(&mut self, dt: f64) {
        let toward_work = self.phase() == 0;
        for (k, position) in self.positions.iter_mut().enumerate() {
            let target = if toward_work {
                self.works[k]
            } else {
                self.homes[k]
            };
            let dx = target.x - position.x;
            let dy = target.y - position.y;
            let dist = (dx * dx + dy * dy).sqrt();
            let reach = self.speeds_mps[k] * dt;
            if dist <= reach || dist == 0.0 {
                *position = target;
            } else {
                let scale = reach / dist;
                *position = Point::new(position.x + dx * scale, position.y + dy * scale);
            }
        }
        self.elapsed_seconds += dt;
    }

    /// Advances by `n` steps of `dt` seconds and returns the positions.
    pub fn run_steps(&mut self, n: usize, dt: f64) -> Vec<Point> {
        for _ in 0..n {
            self.step(dt);
        }
        self.positions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn start_positions(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(100.0 + 10.0 * i as f64, 200.0))
            .collect()
    }

    #[test]
    fn class_parameter_ranges_match_the_paper() {
        assert_eq!(MobilityClass::Pedestrian.initial_speed_range(), (0.5, 1.8));
        assert_eq!(MobilityClass::Bike.initial_speed_range(), (2.0, 8.0));
        assert_eq!(MobilityClass::Vehicle.initial_speed_range(), (5.5, 20.0));
        assert_eq!(MobilityClass::Pedestrian.acceleration_range(), (-0.3, 0.3));
        assert_eq!(MobilityClass::Vehicle.acceleration_range(), (-3.0, 3.0));
        let (lo, hi) = MobilityClass::Bike.angular_velocity_range();
        assert!((lo + PI / 3.0).abs() < 1e-12 && (hi - PI / 3.0).abs() < 1e-12);
        assert_eq!(MobilityClass::all().len(), 3);
        assert_eq!(PAPER_SLOT_SECONDS, 5.0);
    }

    #[test]
    fn paper_mix_assigns_classes_round_robin() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = MobilityModel::paper_mix(
            &start_positions(7),
            DeploymentArea::paper_default(),
            &mut rng,
        );
        let classes: Vec<_> = model.users().iter().map(|u| u.class).collect();
        assert_eq!(classes[0], MobilityClass::Pedestrian);
        assert_eq!(classes[1], MobilityClass::Bike);
        assert_eq!(classes[2], MobilityClass::Vehicle);
        assert_eq!(classes[3], MobilityClass::Pedestrian);
        for u in model.users() {
            let (lo, hi) = u.class.initial_speed_range();
            assert!(u.speed_mps >= lo && u.speed_mps <= hi);
            assert!(u.orientation_rad >= 0.0 && u.orientation_rad <= PI);
        }
        assert_eq!(model.slot_seconds(), 5.0);
        assert_eq!(model.elapsed_seconds(), 0.0);
    }

    #[test]
    fn users_stay_inside_the_area_for_two_hours() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = MobilityModel::paper_mix(&start_positions(12), area, &mut rng);
        // Two hours of 5-second slots, as in Fig. 7.
        let slots = (2.0 * 3600.0 / PAPER_SLOT_SECONDS) as usize;
        for _ in 0..slots {
            model.step(&mut rng);
            for u in model.users() {
                assert!(area.contains(u.position), "user escaped: {:?}", u.position);
                assert!(u.speed_mps >= 0.0);
            }
        }
        assert!((model.elapsed_seconds() - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn positions_actually_change_over_time() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let start = start_positions(6);
        let mut model = MobilityModel::paper_mix(&start, area, &mut rng);
        let after = model.run_slots(24, &mut rng); // two minutes
        let moved = start
            .iter()
            .zip(&after)
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(moved >= 5, "only {moved} users moved");
    }

    #[test]
    fn vehicles_move_farther_than_pedestrians_on_average() {
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        let start = start_positions(30);
        let mut model = MobilityModel::paper_mix(&start, area, &mut rng);
        // A handful of slots, short enough that border reflections are rare.
        model.run_slots(6, &mut rng);
        let mut ped = Vec::new();
        let mut veh = Vec::new();
        for (u, s) in model.users().iter().zip(&start) {
            let d = u.position.distance(*s);
            match u.class {
                MobilityClass::Pedestrian => ped.push(d),
                MobilityClass::Vehicle => veh.push(d),
                MobilityClass::Bike => {}
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&veh) > avg(&ped),
            "vehicles ({}) should outrun pedestrians ({})",
            avg(&veh),
            avg(&ped)
        );
    }

    #[test]
    fn explicit_construction_and_reflection() {
        let area = DeploymentArea::new(100.0).unwrap();
        // A fast user heading straight for the border.
        let user = MobileUser {
            position: Point::new(95.0, 50.0),
            speed_mps: 10.0,
            orientation_rad: 0.0,
            class: MobilityClass::Vehicle,
        };
        let mut model = MobilityModel::new(vec![user], area, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        model.step(&mut rng);
        let p = model.positions()[0];
        assert!(area.contains(p));
    }

    #[test]
    #[should_panic(expected = "slot length")]
    fn zero_slot_length_panics() {
        let _ = MobilityModel::new(vec![], DeploymentArea::paper_default(), 0.0);
    }

    #[test]
    fn commuter_anchors_live_in_their_bands_and_seed_deterministically() {
        let area = DeploymentArea::paper_default();
        let side = area.side_m();
        let flow = CommuterFlow::new(30, area, 600.0, 42).unwrap();
        for (home, work) in flow.homes().iter().zip(flow.works()) {
            assert!(home.x <= 0.4 * side, "home outside band: {home:?}");
            assert!(work.x >= 0.6 * side, "work outside band: {work:?}");
            assert!(area.contains(*home) && area.contains(*work));
        }
        assert_eq!(flow.positions(), flow.homes().to_vec(), "starts at home");
        assert_eq!(flow.classes()[0], MobilityClass::Pedestrian);
        assert_eq!(flow.classes()[1], MobilityClass::Bike);
        assert_eq!(flow.classes()[2], MobilityClass::Vehicle);
        let again = CommuterFlow::new(30, area, 600.0, 42).unwrap();
        assert_eq!(flow, again, "same seed, same flow");
        let other = CommuterFlow::new(30, area, 600.0, 43).unwrap();
        assert_ne!(flow.homes(), other.homes(), "different seeds differ");
        assert!(CommuterFlow::new(3, area, 0.0, 1).is_err());
        assert!(CommuterFlow::new(3, area, f64::NAN, 1).is_err());
    }

    #[test]
    fn commuters_reach_work_then_return_home() {
        let area = DeploymentArea::paper_default();
        // Half-period long enough for the slowest pedestrian to cross:
        // diagonal ≈ 1414 m at ≥ 0.5 m/s needs < 2 900 s.
        let half = 3_000.0;
        let mut flow = CommuterFlow::new(9, area, half, 7).unwrap();
        assert_eq!(flow.phase(), 0, "morning commute first");
        // Walk the full morning in 10 s steps.
        flow.run_steps(300, 10.0);
        assert_eq!(flow.positions(), flow.works().to_vec(), "everyone at work");
        assert_eq!(flow.phase(), 1, "evening commute next");
        flow.run_steps(300, 10.0);
        assert_eq!(flow.positions(), flow.homes().to_vec(), "everyone home");
        assert!((flow.elapsed_seconds() - 2.0 * half).abs() < 1e-9);
        assert_eq!(flow.phase(), 0, "the cycle repeats");
    }

    #[test]
    fn commuter_steps_are_deterministic_and_never_overshoot() {
        let area = DeploymentArea::paper_default();
        let mut a = CommuterFlow::new(12, area, 500.0, 3).unwrap();
        let mut b = a.clone();
        // Different step granularities share waypoints at common times.
        let coarse = a.run_steps(5, 20.0);
        let fine = b.run_steps(100, 1.0);
        for (p, q) in coarse.iter().zip(&fine) {
            assert!(p.distance(*q) < 1e-9, "{p:?} vs {q:?}");
        }
        // Nobody leaves the area: straight-line travel between interior
        // anchors stays interior.
        for p in &coarse {
            assert!(area.contains(*p));
        }
    }
}
