//! The cache-hit-ratio objective `U(X)` of Eq. (2).
//!
//! A request `(k, i)` is a *hit* under placement `X` when some edge server
//! `m` both caches model `i` (`x_{m,i} = 1`) and can deliver it within the
//! deadline (`I1(m,k,i) = 1`). The expected cache hit ratio is the
//! probability-weighted fraction of hit requests:
//!
//! ```text
//! U(X) = Σ_{k,i} p_{k,i} · [1 − Π_m (1 − x_{m,i} I1(m,k,i))] / Σ_{k,i} p_{k,i}
//! ```
//!
//! [`HitRatioObjective`] evaluates `U`, marginal gains (the primitive used
//! by every greedy algorithm in the paper), and per-request hit
//! classification. It consumes the eligibility indicator through the
//! [`EligibilityView`] trait, so the same evaluator runs unchanged over
//! the dense tensor and the coverage-pruned sparse representation — and
//! because every view yields indices in ascending order, the two paths
//! accumulate floats identically and produce bit-identical hit ratios.
//! The demand side is likewise consumed through the [`DemandView`]
//! trait, so the evaluator scores placements against the ground-truth
//! probabilities `p_{k,i}` or against an online
//! [`DemandEstimate`](crate::demand::DemandEstimate) interchangeably.

use trimcaching_modellib::ModelId;

use crate::demand::DemandView;
use crate::eligibility::{EligibilityView, ServerModels, UsersFor};
use crate::entities::{ServerId, UserId};
use crate::error::ScenarioError;
use crate::placement::Placement;

/// Evaluator of the expected cache hit ratio for a fixed demand and
/// eligibility view.
#[derive(Debug, Clone, Copy)]
pub struct HitRatioObjective<'a> {
    demand: &'a dyn DemandView,
    eligibility: &'a dyn EligibilityView,
}

impl<'a> HitRatioObjective<'a> {
    /// Creates an objective evaluator over any demand and eligibility
    /// representation.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] when the demand and the
    /// eligibility view disagree on the number of users or models.
    pub fn new<D, E>(demand: &'a D, eligibility: &'a E) -> Result<Self, ScenarioError>
    where
        D: DemandView,
        E: EligibilityView,
    {
        Self::from_views(demand, eligibility)
    }

    /// Trait-object variant of [`HitRatioObjective::new`] for callers
    /// that already hold dynamic views (e.g. an online controller
    /// carrying a boxed estimate).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] when the demand and the
    /// eligibility view disagree on the number of users or models.
    pub fn from_views(
        demand: &'a dyn DemandView,
        eligibility: &'a dyn EligibilityView,
    ) -> Result<Self, ScenarioError> {
        if demand.num_users() != eligibility.num_users()
            || demand.num_models() != eligibility.num_models()
        {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "demand is {}x{} but eligibility is {}x{}",
                    demand.num_users(),
                    demand.num_models(),
                    eligibility.num_users(),
                    eligibility.num_models()
                ),
            });
        }
        Ok(Self {
            demand,
            eligibility,
        })
    }

    /// Builds the evaluator without re-checking dimensions. Only for
    /// callers that already validated the views against each other —
    /// [`crate::Scenario`] does so at construction and can therefore
    /// hand out objectives without a panic or error path.
    pub(crate) fn from_validated_views(
        demand: &'a dyn DemandView,
        eligibility: &'a dyn EligibilityView,
    ) -> Self {
        Self {
            demand,
            eligibility,
        }
    }

    /// The eligibility view the objective evaluates against.
    pub fn view(&self) -> &'a dyn EligibilityView {
        self.eligibility
    }

    /// Number of users `K`.
    pub fn num_users(&self) -> usize {
        self.demand.num_users()
    }

    /// Number of models `I`.
    pub fn num_models(&self) -> usize {
        self.demand.num_models()
    }

    /// Number of servers `M`.
    pub fn num_servers(&self) -> usize {
        self.eligibility.num_servers()
    }

    /// Total request mass `Σ_{k,i} p_{k,i}` — the denominator of Eq. (2).
    pub fn total_mass(&self) -> f64 {
        self.demand.total_mass()
    }

    /// The request weight `p_{k,i}`, zero for out-of-range indices.
    pub fn weight(&self, user: UserId, model: ModelId) -> f64 {
        self.demand.weight(user, model)
    }

    /// Whether server `m` can serve `(k, i)` within the deadline
    /// (`I1(m,k,i)`).
    pub fn eligible(&self, server: ServerId, user: UserId, model: ModelId) -> bool {
        self.eligibility.eligible(server.index(), user, model)
    }

    /// The users `server` can serve for `model` within deadline,
    /// ascending — the support of the marginal gain of `(server, model)`.
    pub fn eligible_users(&self, server: ServerId, model: ModelId) -> UsersFor<'a> {
        self.eligibility.users_for(server.index(), model)
    }

    /// The models `server` can serve for at least one user, ascending —
    /// the candidate set a greedy loop needs to consider for `server`.
    pub fn candidate_models(&self, server: ServerId) -> ServerModels<'a> {
        self.eligibility.server_models(server.index())
    }

    /// Whether request `(k, i)` is a hit under `placement`: some candidate
    /// server caches the model.
    pub fn is_served(&self, placement: &Placement, user: UserId, model: ModelId) -> bool {
        self.eligibility
            .servers_for(user, model)
            .any(|m| placement.contains(ServerId(m), model))
    }

    /// Expected number of hits `Σ_{k,i} p_{k,i} · hit(k,i)` — the numerator
    /// of Eq. (2).
    pub fn expected_hits(&self, placement: &Placement) -> f64 {
        let mut total = 0.0;
        for k in 0..self.num_users() {
            for i in 0..self.num_models() {
                let user = UserId(k);
                let model = ModelId(i);
                if self.is_served(placement, user, model) {
                    total += self.weight(user, model);
                }
            }
        }
        total
    }

    /// The expected cache hit ratio `U(X)` in `[0, 1]`.
    pub fn hit_ratio(&self, placement: &Placement) -> f64 {
        let mass = self.total_mass();
        if mass <= 0.0 {
            return 0.0;
        }
        self.expected_hits(placement) / mass
    }

    /// The increase in expected hits from additionally placing `model` on
    /// `server`: `U(X ∪ {x_{m,i}}) − U(X)` multiplied by the total mass
    /// (i.e. expressed in expected-hit units). Only requests for `model`
    /// that are not already served and become eligible through `server`
    /// contribute; the loop walks exactly the eligible users of
    /// `(server, model)` instead of scanning all `K`.
    pub fn marginal_hits(&self, placement: &Placement, server: ServerId, model: ModelId) -> f64 {
        if placement.contains(server, model) {
            return 0.0;
        }
        let mut gain = 0.0;
        for user in self.eligibility.users_for(server.index(), model) {
            if self.is_served(placement, user, model) {
                continue;
            }
            gain += self.weight(user, model);
        }
        gain
    }

    /// The marginal gain expressed as a hit-ratio increment (normalised by
    /// the total mass).
    pub fn marginal_hit_ratio(
        &self,
        placement: &Placement,
        server: ServerId,
        model: ModelId,
    ) -> f64 {
        let mass = self.total_mass();
        if mass <= 0.0 {
            return 0.0;
        }
        self.marginal_hits(placement, server, model) / mass
    }

    /// The per-server request weight `u(m, i)` of Eq. (14): the probability
    /// mass of requests for `model` that server `m` can serve within
    /// deadline *and* that are not already served by the placement
    /// (the `I2` indicator of the successive greedy decomposition).
    ///
    /// With an empty placement this is simply
    /// `Σ_k p_{k,i} · I1(m,k,i)`.
    pub fn per_server_weight(
        &self,
        already_placed: &Placement,
        server: ServerId,
        model: ModelId,
    ) -> f64 {
        self.marginal_hits(already_placed, server, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;
    use crate::eligibility::{EligibilityTensor, SparseEligibility};

    /// 2 servers, 2 users, 2 models.
    /// - server 0 can serve user 0 for both models;
    /// - server 1 can serve user 1 for model 1 only;
    /// - user 1 / model 0 can never be served.
    fn fixture() -> (Demand, EligibilityTensor) {
        let demand = Demand::new(
            vec![vec![0.6, 0.4], vec![0.7, 0.3]],
            vec![vec![1.0; 2]; 2],
            vec![vec![0.1; 2]; 2],
        )
        .unwrap();
        let eligibility = EligibilityTensor::from_fn(2, 2, 2, |m, k, i| {
            matches!((m, k, i), (0, 0, _) | (1, 1, 1))
        });
        (demand, eligibility)
    }

    #[test]
    fn empty_placement_has_zero_hit_ratio() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        let p = Placement::empty(2, 2);
        assert_eq!(obj.hit_ratio(&p), 0.0);
        assert_eq!(obj.expected_hits(&p), 0.0);
        assert_eq!(obj.num_users(), 2);
        assert_eq!(obj.num_models(), 2);
        assert_eq!(obj.num_servers(), 2);
        assert!((obj.total_mass() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_counts_only_eligible_placements() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        let mut p = Placement::empty(2, 2);
        // Model 0 on server 0 serves only user 0 (weight 0.6).
        p.place(ServerId(0), ModelId(0)).unwrap();
        assert!((obj.expected_hits(&p) - 0.6).abs() < 1e-12);
        assert!((obj.hit_ratio(&p) - 0.3).abs() < 1e-12);
        assert!(obj.is_served(&p, UserId(0), ModelId(0)));
        assert!(!obj.is_served(&p, UserId(1), ModelId(0)));
        // Placing model 0 on server 1 helps nobody (server 1 only serves
        // user 1 / model 1).
        p.place(ServerId(1), ModelId(0)).unwrap();
        assert!((obj.expected_hits(&p) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn marginal_gains_ignore_already_served_requests() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        let mut p = Placement::empty(2, 2);
        // Initially, placing model 1 on server 0 would serve user 0
        // (weight 0.4); on server 1 it would serve user 1 (weight 0.3).
        assert!((obj.marginal_hits(&p, ServerId(0), ModelId(1)) - 0.4).abs() < 1e-12);
        assert!((obj.marginal_hits(&p, ServerId(1), ModelId(1)) - 0.3).abs() < 1e-12);
        p.place(ServerId(0), ModelId(1)).unwrap();
        // User 0 is now served; the remaining gain on server 1 is user 1.
        assert!((obj.marginal_hits(&p, ServerId(1), ModelId(1)) - 0.3).abs() < 1e-12);
        // Re-placing an existing model has no gain.
        assert_eq!(obj.marginal_hits(&p, ServerId(0), ModelId(1)), 0.0);
        // Normalised variant divides by the mass of 2.0.
        assert!((obj.marginal_hit_ratio(&p, ServerId(1), ModelId(1)) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn per_server_weight_matches_eq_14() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        let empty = Placement::empty(2, 2);
        // u(0, 0) = p_{0,0} = 0.6 (only user 0 is eligible at server 0).
        assert!((obj.per_server_weight(&empty, ServerId(0), ModelId(0)) - 0.6).abs() < 1e-12);
        // u(1, 0) = 0 (server 1 cannot serve model 0 for anyone).
        assert_eq!(obj.per_server_weight(&empty, ServerId(1), ModelId(0)), 0.0);
    }

    #[test]
    fn hit_ratio_is_monotone_under_additional_placements() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        let mut p = Placement::empty(2, 2);
        let mut last = 0.0;
        let additions = [
            (ServerId(0), ModelId(0)),
            (ServerId(0), ModelId(1)),
            (ServerId(1), ModelId(1)),
            (ServerId(1), ModelId(0)),
        ];
        for (s, m) in additions {
            p.place(s, m).unwrap();
            let u = obj.hit_ratio(&p);
            assert!(u >= last - 1e-12, "hit ratio decreased: {u} < {last}");
            last = u;
        }
        // Full placement serves user0/model0, user0/model1, user1/model1
        // but never user1/model0: (0.6 + 0.4 + 0.3) / 2.0 = 0.65.
        assert!((last - 0.65).abs() < 1e-12);
    }

    #[test]
    fn mismatched_dimensions_are_rejected() {
        let (demand, _) = fixture();
        let wrong = EligibilityTensor::from_fn(2, 3, 2, |_, _, _| true);
        assert!(HitRatioObjective::new(&demand, &wrong).is_err());
        let wrong = EligibilityTensor::from_fn(2, 2, 5, |_, _, _| true);
        assert!(HitRatioObjective::new(&demand, &wrong).is_err());
    }

    #[test]
    fn weights_outside_range_are_zero() {
        let (demand, elig) = fixture();
        let obj = HitRatioObjective::new(&demand, &elig).unwrap();
        assert_eq!(obj.weight(UserId(9), ModelId(0)), 0.0);
        assert_eq!(obj.weight(UserId(0), ModelId(9)), 0.0);
    }

    #[test]
    fn estimated_demand_drives_the_objective_like_the_ground_truth() {
        use crate::demand::DemandEstimate;
        let (demand, elig) = fixture();
        // An estimate exactly proportional to the true probabilities (an
        // observed request stream scales every weight by the request
        // volume) produces identical hit ratios and proportional gains.
        let scaled = DemandEstimate::new(vec![vec![6.0, 4.0], vec![7.0, 3.0]]).unwrap();
        let truth = HitRatioObjective::new(&demand, &elig).unwrap();
        let est = HitRatioObjective::new(&scaled, &elig).unwrap();
        let mut p = Placement::empty(2, 2);
        p.place(ServerId(0), ModelId(0)).unwrap();
        assert!((truth.hit_ratio(&p) - est.hit_ratio(&p)).abs() < 1e-12);
        assert!(
            (est.marginal_hits(&p, ServerId(1), ModelId(1)) - 3.0).abs() < 1e-12,
            "gains are expressed in the estimate's own weight units"
        );
        // A skewed estimate reorders the gains — the planner would now
        // prefer model 0 at server 0 over model 1.
        let skewed = DemandEstimate::new(vec![vec![9.0, 0.1], vec![0.1, 0.1]]).unwrap();
        let skewed_obj = HitRatioObjective::new(&skewed, &elig).unwrap();
        let empty = Placement::empty(2, 2);
        assert!(
            skewed_obj.marginal_hits(&empty, ServerId(0), ModelId(0))
                > skewed_obj.marginal_hits(&empty, ServerId(0), ModelId(1))
        );
    }

    #[test]
    fn dense_and_sparse_views_give_bit_identical_objectives() {
        let (demand, dense) = fixture();
        let sparse = SparseEligibility::from_fn(2, 2, 2, |m, k, i| {
            matches!((m, k, i), (0, 0, _) | (1, 1, 1))
        });
        let d = HitRatioObjective::new(&demand, &dense).unwrap();
        let s = HitRatioObjective::new(&demand, &sparse).unwrap();
        let mut p = Placement::empty(2, 2);
        for (srv, model) in [(0, 1), (1, 1), (0, 0)] {
            assert_eq!(
                d.marginal_hits(&p, ServerId(srv), ModelId(model)),
                s.marginal_hits(&p, ServerId(srv), ModelId(model))
            );
            p.place(ServerId(srv), ModelId(model)).unwrap();
            assert_eq!(d.hit_ratio(&p), s.hit_ratio(&p));
            assert_eq!(d.expected_hits(&p), s.expected_hits(&p));
        }
        // The candidate sets agree too.
        for srv in 0..2 {
            assert_eq!(
                d.candidate_models(ServerId(srv)).collect::<Vec<_>>(),
                s.candidate_models(ServerId(srv)).collect::<Vec<_>>()
            );
            for i in 0..2 {
                assert_eq!(
                    d.eligible_users(ServerId(srv), ModelId(i))
                        .collect::<Vec<_>>(),
                    s.eligible_users(ServerId(srv), ModelId(i))
                        .collect::<Vec<_>>()
                );
            }
        }
        assert_eq!(d.view().num_eligible(), s.view().num_eligible());
    }
}
