//! The placement decision `X = {x_{m,i}}` and its block-level view
//! `Y = {y_{m,j}}`.
//!
//! `x_{m,i} = 1` means model `i` is cached on edge server `m`. The
//! block-level view `y_{m,j}` of Section IV-B (P1.2) marks which parameter
//! blocks server `m` actually stores: `y_{m,j} = 1 − Π_{i ∈ I_j}(1 − x_{m,i})`,
//! i.e. a block is stored when at least one placed model contains it.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use trimcaching_modellib::{BlockId, ModelId, ModelLibrary};

use crate::entities::ServerId;
use crate::error::ScenarioError;

/// A model placement decision over `M` servers and `I` models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    num_servers: usize,
    num_models: usize,
    /// `placed[m]` = sorted set of models cached on server `m`.
    placed: Vec<BTreeSet<ModelId>>,
}

impl Placement {
    /// Creates an empty placement (no model cached anywhere).
    pub fn empty(num_servers: usize, num_models: usize) -> Self {
        Self {
            num_servers,
            num_models,
            placed: vec![BTreeSet::new(); num_servers],
        }
    }

    /// Number of servers `M`.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of models `I`.
    pub fn num_models(&self) -> usize {
        self.num_models
    }

    /// Whether model `i` is cached on server `m` (`x_{m,i}`).
    pub fn contains(&self, server: ServerId, model: ModelId) -> bool {
        self.placed
            .get(server.index())
            .map(|s| s.contains(&model))
            .unwrap_or(false)
    }

    /// Places model `i` on server `m`. Returns `true` when the placement
    /// changed (the model was not already there).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for unknown indices.
    pub fn place(&mut self, server: ServerId, model: ModelId) -> Result<bool, ScenarioError> {
        self.check(server, model)?;
        Ok(self.placed[server.index()].insert(model))
    }

    /// Removes model `i` from server `m`. Returns `true` when the placement
    /// changed.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for unknown indices.
    pub fn remove(&mut self, server: ServerId, model: ModelId) -> Result<bool, ScenarioError> {
        self.check(server, model)?;
        Ok(self.placed[server.index()].remove(&model))
    }

    /// The models cached on server `m`, in ascending model order.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown server.
    pub fn models_on(&self, server: ServerId) -> Result<Vec<ModelId>, ScenarioError> {
        self.placed
            .get(server.index())
            .map(|s| s.iter().copied().collect())
            .ok_or(ScenarioError::IndexOutOfRange {
                entity: "server",
                index: server.index(),
                len: self.num_servers,
            })
    }

    /// The servers caching model `i`, in ascending server order.
    pub fn servers_of(&self, model: ModelId) -> Vec<ServerId> {
        self.placed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&model))
            .map(|(m, _)| ServerId(m))
            .collect()
    }

    /// Total number of `(server, model)` placements (`|X|`).
    pub fn len(&self) -> usize {
        self.placed.iter().map(BTreeSet::len).sum()
    }

    /// Whether no model is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(server, model)` pairs in the placement.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, ModelId)> + '_ {
        self.placed
            .iter()
            .enumerate()
            .flat_map(|(m, set)| set.iter().map(move |i| (ServerId(m), *i)))
    }

    /// The block-level view of server `m`: the set of blocks it stores
    /// (`{j : y_{m,j} = 1}` in P1.2), given the library's model→block map.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown server and
    /// propagates library errors for unknown models.
    pub fn blocks_on(
        &self,
        server: ServerId,
        library: &ModelLibrary,
    ) -> Result<BTreeSet<BlockId>, ScenarioError> {
        let models = self.models_on(server)?;
        let mut blocks = BTreeSet::new();
        for model in models {
            for &b in library.model(model)?.blocks() {
                blocks.insert(b);
            }
        }
        Ok(blocks)
    }

    fn check(&self, server: ServerId, model: ModelId) -> Result<(), ScenarioError> {
        if server.index() >= self.num_servers {
            return Err(ScenarioError::IndexOutOfRange {
                entity: "server",
                index: server.index(),
                len: self.num_servers,
            });
        }
        if model.index() >= self.num_models {
            return Err(ScenarioError::IndexOutOfRange {
                entity: "model",
                index: model.index(),
                len: self.num_models,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimcaching_modellib::ModelLibrary;

    fn tiny_library() -> ModelLibrary {
        let mut b = ModelLibrary::builder();
        b.add_model_with_blocks("m0", "t0", &[("shared".into(), 10), ("m0/own".into(), 5)])
            .unwrap();
        b.add_model_with_blocks("m1", "t1", &[("shared".into(), 10), ("m1/own".into(), 7)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn place_and_remove_round_trip() {
        let mut p = Placement::empty(2, 3);
        assert!(p.is_empty());
        assert!(p.place(ServerId(0), ModelId(1)).unwrap());
        assert!(!p.place(ServerId(0), ModelId(1)).unwrap());
        assert!(p.contains(ServerId(0), ModelId(1)));
        assert!(!p.contains(ServerId(1), ModelId(1)));
        assert_eq!(p.len(), 1);
        assert!(p.remove(ServerId(0), ModelId(1)).unwrap());
        assert!(!p.remove(ServerId(0), ModelId(1)).unwrap());
        assert!(p.is_empty());
    }

    #[test]
    fn out_of_range_operations_error() {
        let mut p = Placement::empty(2, 3);
        assert!(p.place(ServerId(2), ModelId(0)).is_err());
        assert!(p.place(ServerId(0), ModelId(3)).is_err());
        assert!(p.remove(ServerId(5), ModelId(0)).is_err());
        assert!(p.models_on(ServerId(9)).is_err());
        assert!(!p.contains(ServerId(9), ModelId(0)));
    }

    #[test]
    fn queries_list_models_and_servers() {
        let mut p = Placement::empty(3, 4);
        p.place(ServerId(0), ModelId(2)).unwrap();
        p.place(ServerId(0), ModelId(1)).unwrap();
        p.place(ServerId(2), ModelId(2)).unwrap();
        assert_eq!(
            p.models_on(ServerId(0)).unwrap(),
            vec![ModelId(1), ModelId(2)]
        );
        assert_eq!(p.servers_of(ModelId(2)), vec![ServerId(0), ServerId(2)]);
        assert!(p.servers_of(ModelId(0)).is_empty());
        assert_eq!(p.len(), 3);
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(ServerId(2), ModelId(2))));
    }

    #[test]
    fn block_view_unions_model_blocks() {
        let lib = tiny_library();
        let mut p = Placement::empty(1, 2);
        p.place(ServerId(0), ModelId(0)).unwrap();
        p.place(ServerId(0), ModelId(1)).unwrap();
        let blocks = p.blocks_on(ServerId(0), &lib).unwrap();
        // shared + m0/own + m1/own = 3 distinct blocks even though the
        // shared block appears in both models.
        assert_eq!(blocks.len(), 3);
        let empty = Placement::empty(1, 2);
        assert!(empty.blocks_on(ServerId(0), &lib).unwrap().is_empty());
        assert!(empty.blocks_on(ServerId(4), &lib).is_err());
    }

    #[test]
    fn equality_is_structural() {
        let mut a = Placement::empty(2, 2);
        let mut b = Placement::empty(2, 2);
        a.place(ServerId(1), ModelId(0)).unwrap();
        b.place(ServerId(1), ModelId(0)).unwrap();
        assert_eq!(a, b);
        b.place(ServerId(0), ModelId(1)).unwrap();
        assert_ne!(a, b);
    }
}
