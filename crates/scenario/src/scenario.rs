//! The [`Scenario`] aggregate: everything the placement algorithms and the
//! evaluation need about one "snapshot" of the system.
//!
//! A scenario bundles the model library, the edge servers with their
//! capacities, the users with their positions, the demand matrices, the
//! radio parameters and the derived quantities (coverage, per-user
//! allocation, expected rate matrix and the eligibility tensor
//! `I1(m,k,i)`). The paper solves the placement on such a snapshot
//! (Section IV-A notes that mobility is handled by re-solving when
//! performance degrades); [`Scenario::with_user_positions`] produces the
//! re-derived snapshot used by the mobility study.

use rand::Rng;
use serde::{Deserialize, Serialize};

use trimcaching_modellib::ModelLibrary;
use trimcaching_wireless::allocation::PerUserAllocation;
use trimcaching_wireless::channel::{Fading, RayleighFading};
use trimcaching_wireless::coverage::CoverageMap;
use trimcaching_wireless::geometry::Point;
use trimcaching_wireless::params::RadioParams;
use trimcaching_wireless::Backhaul;

use crate::delta::SnapshotDelta;
use crate::demand::Demand;
use crate::eligibility::{Eligibility, EligibilityRepr};
use crate::entities::{EdgeServer, ServerId, User, UserId};
use crate::error::ScenarioError;
use crate::latency::{LatencyEvaluator, RateMatrix};
use crate::objective::HitRatioObjective;
use crate::placement::Placement;
use crate::storage::StorageTracker;

/// One snapshot of the system: inputs plus derived radio/latency state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    library: ModelLibrary,
    servers: Vec<EdgeServer>,
    users: Vec<User>,
    demand: Demand,
    radio: RadioParams,
    backhaul: Backhaul,
    coverage: CoverageMap,
    allocation: PerUserAllocation,
    rates: RateMatrix,
    eligibility: Eligibility,
    /// The representation the builder was asked for (possibly `Auto`);
    /// kept so re-derived snapshots (mobility, fading) make the same
    /// choice.
    requested_repr: EligibilityRepr,
}

impl Scenario {
    /// Starts a scenario builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The model library.
    pub fn library(&self) -> &ModelLibrary {
        &self.library
    }

    /// The edge servers.
    pub fn servers(&self) -> &[EdgeServer] {
        &self.servers
    }

    /// The users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// The demand matrices.
    pub fn demand(&self) -> &Demand {
        &self.demand
    }

    /// The radio parameters.
    pub fn radio(&self) -> &RadioParams {
        &self.radio
    }

    /// The backhaul mesh.
    pub fn backhaul(&self) -> &Backhaul {
        &self.backhaul
    }

    /// The coverage relation.
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// The expected downlink rate matrix used for placement decisions.
    pub fn rates(&self) -> &RateMatrix {
        &self.rates
    }

    /// The precomputed eligibility indicator `I1(m,k,i)` under expected
    /// rates, in whichever representation the builder selected (see
    /// [`ScenarioBuilder::eligibility_repr`]).
    pub fn eligibility(&self) -> &Eligibility {
        &self.eligibility
    }

    /// The eligibility representation actually held (never
    /// [`EligibilityRepr::Auto`]).
    pub fn eligibility_repr(&self) -> EligibilityRepr {
        self.eligibility.repr()
    }

    /// Number of edge servers `M`.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of users `K`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of models `I`.
    pub fn num_models(&self) -> usize {
        self.library.num_models()
    }

    /// Storage capacity `Q_m` of server `m` in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown server.
    pub fn capacity_bytes(&self, server: ServerId) -> Result<u64, ScenarioError> {
        self.servers
            .get(server.index())
            .map(EdgeServer::capacity_bytes)
            .ok_or(ScenarioError::IndexOutOfRange {
                entity: "server",
                index: server.index(),
                len: self.servers.len(),
            })
    }

    /// An empty placement with this scenario's dimensions.
    pub fn empty_placement(&self) -> Placement {
        Placement::empty(self.num_servers(), self.num_models())
    }

    /// The hit-ratio objective under the expected-rate eligibility.
    pub fn objective(&self) -> HitRatioObjective<'_> {
        // Demand/eligibility dimensions were cross-checked when the
        // scenario was built, so no fallible path is needed here.
        HitRatioObjective::from_validated_views(&self.demand, &self.eligibility)
    }

    /// The hit-ratio objective under this scenario's eligibility but an
    /// *arbitrary* demand surface — e.g. an online
    /// [`DemandEstimate`](crate::demand::DemandEstimate) reconstructed
    /// from a served request stream. This is the entry point online
    /// re-placement uses: same eligibility, same solver, estimated
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] when the view's
    /// dimensions disagree with the scenario's.
    pub fn objective_with_demand<'a>(
        &'a self,
        demand: &'a dyn crate::demand::DemandView,
    ) -> Result<HitRatioObjective<'a>, ScenarioError> {
        HitRatioObjective::from_views(demand, &self.eligibility)
    }

    /// A fresh storage tracker for server `m`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] for an unknown server.
    pub fn storage_tracker(&self, server: ServerId) -> Result<StorageTracker<'_>, ScenarioError> {
        Ok(StorageTracker::new(
            &self.library,
            self.capacity_bytes(server)?,
        ))
    }

    /// Expected cache hit ratio of `placement` under expected rates.
    pub fn hit_ratio(&self, placement: &Placement) -> f64 {
        self.objective().hit_ratio(placement)
    }

    /// Whether `placement` satisfies every server's capacity constraint
    /// under shared (deduplicated) storage.
    pub fn satisfies_capacities(&self, placement: &Placement) -> bool {
        (0..self.num_servers()).all(|m| {
            let models = placement.models_on(ServerId(m)).unwrap_or_default();
            self.library.union_size_bytes(models) <= self.servers[m].capacity_bytes()
        })
    }

    /// Cache hit ratio of `placement` under one small-scale fading
    /// realisation: every covered server-user link draws an independent
    /// Rayleigh power gain, the rate matrix and eligibility are recomputed,
    /// and the hit ratio is evaluated for the *same* placement (this is how
    /// the paper separates the placement decision — made on expected rates —
    /// from the achieved performance over ~10³ channel realisations).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (which indicate an internally
    /// inconsistent scenario).
    pub fn hit_ratio_under_fading<R: Rng + ?Sized>(
        &self,
        placement: &Placement,
        rng: &mut R,
    ) -> Result<f64, ScenarioError> {
        self.hit_ratio_under(placement, &RayleighFading::unit(), rng)
    }

    /// Cache hit ratio of `placement` under one realisation of an arbitrary
    /// [`Fading`] process (e.g. the paper's Rayleigh model, or a shadowed
    /// Rayleigh channel from `trimcaching_wireless::shadowing`).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (which indicate an internally
    /// inconsistent scenario).
    pub fn hit_ratio_under<F, R>(
        &self,
        placement: &Placement,
        fading: &F,
        rng: &mut R,
    ) -> Result<f64, ScenarioError>
    where
        F: Fading,
        R: Rng + ?Sized,
    {
        let rates =
            RateMatrix::with_fading(&self.coverage, &self.allocation, &self.radio, |_, _| {
                fading.sample_power_gain(rng)
            })?;
        let evaluator = LatencyEvaluator::new(
            &self.library,
            &self.demand,
            &self.coverage,
            &self.backhaul,
            &rates,
        )?;
        let eligibility = derive_eligibility(&evaluator, self.requested_repr, &self.coverage)?;
        let objective = HitRatioObjective::new(&self.demand, &eligibility)?;
        Ok(objective.hit_ratio(placement))
    }

    /// Average cache hit ratio of `placement` over `realisations` Rayleigh
    /// channel draws.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn average_hit_ratio_under_fading<R: Rng + ?Sized>(
        &self,
        placement: &Placement,
        realisations: usize,
        rng: &mut R,
    ) -> Result<f64, ScenarioError> {
        self.average_hit_ratio_under(placement, &RayleighFading::unit(), realisations, rng)
    }

    /// Average cache hit ratio of `placement` over `realisations` draws of
    /// an arbitrary [`Fading`] process. Zero realisations fall back to the
    /// expected-rate evaluation.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn average_hit_ratio_under<F, R>(
        &self,
        placement: &Placement,
        fading: &F,
        realisations: usize,
        rng: &mut R,
    ) -> Result<f64, ScenarioError>
    where
        F: Fading,
        R: Rng + ?Sized,
    {
        if realisations == 0 {
            return Ok(self.hit_ratio(placement));
        }
        let mut total = 0.0;
        for _ in 0..realisations {
            total += self.hit_ratio_under(placement, fading, rng)?;
        }
        Ok(total / realisations as f64)
    }

    /// Rebuilds the scenario with users moved to `positions` (same library,
    /// servers, demand and radio parameters), recomputing coverage,
    /// allocation, rates and eligibility from scratch. The eligibility
    /// representation actually *resolved* on the previous snapshot is
    /// carried forward (an [`EligibilityRepr::Auto`] request is only
    /// re-resolved on the first build), so a long mobile run can never
    /// silently flip dense↔sparse as coverage density drifts.
    ///
    /// Prefer [`Scenario::update_user_positions`] when evolving one
    /// snapshot along a trajectory: it produces a bit-identical result
    /// in `O(moved users)` instead of `O(M · K)`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] if the number of
    /// positions differs from the number of users.
    pub fn with_user_positions(&self, positions: &[Point]) -> Result<Scenario, ScenarioError> {
        if positions.len() != self.users.len() {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "got {} positions for {} users",
                    positions.len(),
                    self.users.len()
                ),
            });
        }
        let users: Vec<User> = self
            .users
            .iter()
            .zip(positions)
            .map(|(u, p)| u.at(*p))
            .collect();
        ScenarioBuilder {
            library: Some(self.library.clone()),
            servers: Some(self.servers.clone()),
            users: Some(users),
            demand: Some(self.demand.clone()),
            radio: self.radio,
            backhaul_rate_bps: self.backhaul.default_rate_bps(),
            eligibility_repr: self.pinned_repr(),
        }
        .build()
    }

    /// The representation re-derived snapshots must use: the original
    /// request if it was explicit, the previously *resolved* choice when
    /// the request was [`EligibilityRepr::Auto`].
    fn pinned_repr(&self) -> EligibilityRepr {
        match self.requested_repr {
            EligibilityRepr::Auto => self.eligibility.repr(),
            explicit => explicit,
        }
    }

    /// Moves every user to `positions` **in place**, recomputing only the
    /// state that can differ: the coverage rows of moved users, the rate
    /// rows of servers whose coverage changed, the per-user resource
    /// shares of servers whose covered-user *count* changed, and the
    /// eligibility rows of the refreshed users (see
    /// [`SnapshotDelta`]). The resulting scenario is bit-identical to a
    /// full [`Scenario::with_user_positions`] rebuild — same coverage,
    /// rates, eligibility and hit ratios — at a cost proportional to the
    /// moved fraction instead of the whole `M × K` plane.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::DimensionMismatch`] if the number of
    /// positions differs from the number of users; the scenario is left
    /// unchanged in that case.
    pub fn update_user_positions(
        &mut self,
        positions: &[Point],
    ) -> Result<SnapshotDelta, ScenarioError> {
        if positions.len() != self.users.len() {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "got {} positions for {} users",
                    positions.len(),
                    self.users.len()
                ),
            });
        }
        let moves: Vec<(usize, Point)> = positions
            .iter()
            .enumerate()
            .filter(|(k, p)| self.users[*k].position() != **p)
            .map(|(k, p)| (k, *p))
            .collect();
        self.apply_user_moves(&moves)
    }

    /// Applies a sparse batch of user moves **in place** — the primitive
    /// behind [`Scenario::update_user_positions`]; see there for the
    /// exact-equivalence guarantee. Moves to a user's current position
    /// are ignored; when the batch names a user twice the last move
    /// wins.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::IndexOutOfRange`] if a move names an
    /// unknown user (the scenario is left unchanged) and propagates
    /// substrate errors (which indicate an internally inconsistent
    /// scenario).
    pub fn apply_user_moves(
        &mut self,
        moves: &[(usize, Point)],
    ) -> Result<SnapshotDelta, ScenarioError> {
        let coverage_delta = self.coverage.apply_user_moves(moves)?;
        if coverage_delta.is_empty() {
            return Ok(SnapshotDelta::empty());
        }
        for &(k, p) in moves {
            self.users[k] = self.users[k].at(p);
        }
        let touched: Vec<usize> = coverage_delta.touched_servers().to_vec();
        let reallocated =
            self.allocation
                .update_servers(&self.coverage, &self.radio, touched.iter().copied())?;
        self.rates
            .update_rows(&self.coverage, &self.allocation, &self.radio, &touched)?;
        // Users whose rate rows — and hence possibly eligibility — can
        // have changed: the moved users themselves plus every user of a
        // server whose per-user share changed.
        let mut refreshed: Vec<usize> = coverage_delta.moved_users().to_vec();
        for &m in &reallocated {
            refreshed.extend_from_slice(self.coverage.users_of_server(m)?);
        }
        refreshed.sort_unstable();
        refreshed.dedup();
        let evaluator = LatencyEvaluator::new(
            &self.library,
            &self.demand,
            &self.coverage,
            &self.backhaul,
            &self.rates,
        )?;
        match &mut self.eligibility {
            Eligibility::Dense(tensor) => evaluator.refresh_dense_users(tensor, &refreshed)?,
            Eligibility::Sparse(sparse) => evaluator.refresh_sparse_users(sparse, &refreshed)?,
        }
        // In-place evolution pins the resolved representation exactly
        // like `with_user_positions` does for rebuilds.
        self.requested_repr = self.pinned_repr();
        Ok(SnapshotDelta::new(
            coverage_delta.moved_users().to_vec(),
            touched,
            reallocated,
            refreshed,
        ))
    }
}

/// Resolves the requested representation against the snapshot's
/// dimensions and builds the eligibility indicator accordingly.
fn derive_eligibility(
    evaluator: &LatencyEvaluator<'_>,
    requested: EligibilityRepr,
    coverage: &CoverageMap,
) -> Result<Eligibility, ScenarioError> {
    let resolved = requested.resolved(
        coverage.num_servers(),
        coverage.num_users(),
        evaluator.num_models(),
        coverage.coverage_density(),
    );
    Ok(match resolved {
        EligibilityRepr::Sparse => Eligibility::Sparse(evaluator.sparse_eligibility()?),
        _ => Eligibility::Dense(evaluator.eligibility()?),
    })
}

/// Builder assembling a [`Scenario`] from its inputs and deriving the radio
/// and latency state.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    library: Option<ModelLibrary>,
    servers: Option<Vec<EdgeServer>>,
    users: Option<Vec<User>>,
    demand: Option<Demand>,
    radio: RadioParams,
    backhaul_rate_bps: f64,
    eligibility_repr: EligibilityRepr,
}

impl ScenarioBuilder {
    /// Sets the model library (required).
    pub fn library(mut self, library: ModelLibrary) -> Self {
        self.library = Some(library);
        self
    }

    /// Sets the edge servers (required).
    pub fn servers(mut self, servers: Vec<EdgeServer>) -> Self {
        self.servers = Some(servers);
        self
    }

    /// Sets the users (required).
    pub fn users(mut self, users: Vec<User>) -> Self {
        self.users = Some(users);
        self
    }

    /// Convenience: creates users at the given positions with dense ids.
    pub fn users_at(mut self, positions: &[Point]) -> Self {
        self.users = Some(
            positions
                .iter()
                .enumerate()
                .map(|(k, p)| User::new(UserId(k), *p))
                .collect(),
        );
        self
    }

    /// Sets the demand matrices (required).
    pub fn demand(mut self, demand: Demand) -> Self {
        self.demand = Some(demand);
        self
    }

    /// Overrides the radio parameters (defaults to the paper values).
    pub fn radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Overrides the backhaul rate in bits per second (defaults to the
    /// paper's 10 Gbps).
    pub fn backhaul_rate_bps(mut self, rate: f64) -> Self {
        self.backhaul_rate_bps = rate;
        self
    }

    /// Selects the eligibility representation (defaults to
    /// [`EligibilityRepr::Auto`], which picks the coverage-pruned sparse
    /// form for large or thinly covered snapshots and the dense tensor
    /// otherwise).
    pub fn eligibility_repr(mut self, repr: EligibilityRepr) -> Self {
        self.eligibility_repr = repr;
        self
    }

    /// Derives the radio state and assembles the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingComponent`] for missing inputs,
    /// [`ScenarioError::DimensionMismatch`] for inconsistent dimensions and
    /// propagates substrate validation errors.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let library = self.library.ok_or(ScenarioError::MissingComponent {
            component: "library",
        })?;
        let servers = self.servers.ok_or(ScenarioError::MissingComponent {
            component: "servers",
        })?;
        let users = self
            .users
            .ok_or(ScenarioError::MissingComponent { component: "users" })?;
        let demand = self.demand.ok_or(ScenarioError::MissingComponent {
            component: "demand",
        })?;
        if servers.is_empty() {
            return Err(ScenarioError::DimensionMismatch {
                reason: "a scenario needs at least one edge server".into(),
            });
        }
        if users.is_empty() {
            return Err(ScenarioError::DimensionMismatch {
                reason: "a scenario needs at least one user".into(),
            });
        }
        if demand.num_users() != users.len() {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "demand covers {} users but {} users were provided",
                    demand.num_users(),
                    users.len()
                ),
            });
        }
        if demand.num_models() != library.num_models() {
            return Err(ScenarioError::DimensionMismatch {
                reason: format!(
                    "demand covers {} models but the library has {}",
                    demand.num_models(),
                    library.num_models()
                ),
            });
        }
        let radio = self.radio;
        radio.validate()?;
        let backhaul_rate = if self.backhaul_rate_bps > 0.0 {
            self.backhaul_rate_bps
        } else {
            radio.backhaul_rate_bps
        };
        let user_points: Vec<Point> = users.iter().map(User::position).collect();
        let server_points: Vec<Point> = servers.iter().map(EdgeServer::position).collect();
        let coverage = CoverageMap::build(&user_points, &server_points, radio.coverage_radius_m)?;
        let allocation = PerUserAllocation::compute(&coverage, &radio)?;
        let rates = RateMatrix::expected(&coverage, &allocation, &radio)?;
        let backhaul = Backhaul::uniform(servers.len(), backhaul_rate)?;
        let evaluator = LatencyEvaluator::new(&library, &demand, &coverage, &backhaul, &rates)?;
        let eligibility = derive_eligibility(&evaluator, self.eligibility_repr, &coverage)?;
        Ok(Scenario {
            library,
            servers,
            users,
            demand,
            radio,
            backhaul,
            coverage,
            allocation,
            rates,
            eligibility,
            requested_repr: self.eligibility_repr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandConfig;
    use crate::entities::gigabytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trimcaching_modellib::builders::SpecialCaseBuilder;
    use trimcaching_modellib::ModelId;

    fn build_scenario(num_users: usize, capacity_gb: f64) -> Scenario {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(3)
            .build(5);
        let servers = vec![
            EdgeServer::new(
                ServerId(0),
                Point::new(250.0, 250.0),
                gigabytes(capacity_gb),
            )
            .unwrap(),
            EdgeServer::new(
                ServerId(1),
                Point::new(750.0, 250.0),
                gigabytes(capacity_gb),
            )
            .unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(42);
        let area = trimcaching_wireless::geometry::DeploymentArea::paper_default();
        let positions: Vec<Point> = (0..num_users)
            .map(|_| area.sample_uniform(&mut rng))
            .collect();
        let demand = DemandConfig::paper_defaults()
            .generate(num_users, library.num_models(), &mut rng)
            .unwrap();
        Scenario::builder()
            .library(library)
            .servers(servers)
            .users_at(&positions)
            .demand(demand)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assembles_consistent_dimensions() {
        let s = build_scenario(8, 1.0);
        assert_eq!(s.num_servers(), 2);
        assert_eq!(s.num_users(), 8);
        assert_eq!(s.num_models(), 9);
        assert_eq!(s.servers().len(), 2);
        assert_eq!(s.users().len(), 8);
        assert_eq!(s.capacity_bytes(ServerId(0)).unwrap(), 1_000_000_000);
        assert!(s.capacity_bytes(ServerId(5)).is_err());
        assert_eq!(s.rates().num_servers(), 2);
        assert_eq!(s.eligibility().num_models(), 9);
        assert!(s.radio().validate().is_ok());
        assert_eq!(s.backhaul().num_servers(), 2);
        assert_eq!(s.coverage().num_users(), 8);
        assert_eq!(s.demand().num_users(), 8);
        assert_eq!(s.library().num_models(), 9);
    }

    #[test]
    fn missing_components_are_reported() {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(1);
        let err = Scenario::builder().library(library).build();
        assert!(matches!(
            err,
            Err(ScenarioError::MissingComponent {
                component: "servers"
            })
        ));
        let err = Scenario::builder().build();
        assert!(matches!(
            err,
            Err(ScenarioError::MissingComponent {
                component: "library"
            })
        ));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(1);
        let servers = vec![EdgeServer::new(ServerId(0), Point::new(0.0, 0.0), 100).unwrap()];
        let mut rng = StdRng::seed_from_u64(1);
        // Demand for the wrong user count.
        let demand = DemandConfig::paper_defaults()
            .generate(3, library.num_models(), &mut rng)
            .unwrap();
        let err = Scenario::builder()
            .library(library.clone())
            .servers(servers.clone())
            .users_at(&[Point::new(1.0, 1.0)])
            .demand(demand)
            .build();
        assert!(matches!(err, Err(ScenarioError::DimensionMismatch { .. })));
        // Demand for the wrong model count.
        let demand = DemandConfig::paper_defaults()
            .generate(1, 2, &mut rng)
            .unwrap();
        let err = Scenario::builder()
            .library(library)
            .servers(servers)
            .users_at(&[Point::new(1.0, 1.0)])
            .demand(demand)
            .build();
        assert!(matches!(err, Err(ScenarioError::DimensionMismatch { .. })));
    }

    #[test]
    fn hit_ratio_grows_as_models_are_placed() {
        let s = build_scenario(10, 1.0);
        let mut placement = s.empty_placement();
        assert_eq!(s.hit_ratio(&placement), 0.0);
        let objective = s.objective();
        // Place the model with the largest marginal gain on server 0.
        let best = (0..s.num_models())
            .max_by(|a, b| {
                objective
                    .marginal_hits(&placement, ServerId(0), ModelId(*a))
                    .partial_cmp(&objective.marginal_hits(&placement, ServerId(0), ModelId(*b)))
                    .unwrap()
            })
            .unwrap();
        placement.place(ServerId(0), ModelId(best)).unwrap();
        let u1 = s.hit_ratio(&placement);
        assert!(u1 > 0.0, "placing the best model should yield hits");
        assert!(s.satisfies_capacities(&placement));
    }

    #[test]
    fn capacity_check_detects_overflow() {
        // 1 MB capacity cannot hold any ~50-100 MB model.
        let s = build_scenario(4, 0.001);
        let mut placement = s.empty_placement();
        placement.place(ServerId(0), ModelId(0)).unwrap();
        assert!(!s.satisfies_capacities(&placement));
    }

    #[test]
    fn fading_evaluation_is_close_to_expected_rate_evaluation() {
        let s = build_scenario(10, 1.0);
        let mut placement = s.empty_placement();
        for i in 0..3 {
            placement.place(ServerId(0), ModelId(i)).unwrap();
            placement.place(ServerId(1), ModelId(i)).unwrap();
        }
        let nominal = s.hit_ratio(&placement);
        let mut rng = StdRng::seed_from_u64(9);
        let faded = s
            .average_hit_ratio_under_fading(&placement, 50, &mut rng)
            .unwrap();
        assert!((0.0..=1.0).contains(&faded));
        // Fading can only push the rate (and hence the hit ratio) around the
        // nominal value; with 50 draws it should stay in a broad band.
        assert!((faded - nominal).abs() < 0.5);
        // Zero realisations falls back to the nominal evaluation.
        let zero = s
            .average_hit_ratio_under_fading(&placement, 0, &mut rng)
            .unwrap();
        assert_eq!(zero, nominal);
    }

    #[test]
    fn moving_users_rebuilds_coverage_and_keeps_dimensions() {
        let s = build_scenario(6, 1.0);
        let new_positions: Vec<Point> = (0..6)
            .map(|i| Point::new(100.0 + 50.0 * i as f64, 900.0))
            .collect();
        let moved = s.with_user_positions(&new_positions).unwrap();
        assert_eq!(moved.num_users(), 6);
        assert_eq!(moved.num_servers(), s.num_servers());
        assert_eq!(moved.num_models(), s.num_models());
        assert_eq!(moved.users()[2].position(), new_positions[2]);
        // Demand is preserved.
        assert_eq!(moved.demand(), s.demand());
        // Wrong position count is rejected.
        assert!(s.with_user_positions(&new_positions[..3]).is_err());
    }

    #[test]
    fn eligibility_repr_is_selectable_and_equivalent() {
        let dense = build_scenario(8, 1.0);
        // Paper-scale snapshots resolve Auto to the dense tensor.
        assert_eq!(dense.eligibility_repr(), EligibilityRepr::Dense);
        // Rebuild the same snapshot with the sparse representation forced.
        let sparse = Scenario::builder()
            .library(dense.library().clone())
            .servers(dense.servers().to_vec())
            .users(dense.users().to_vec())
            .demand(dense.demand().clone())
            .eligibility_repr(EligibilityRepr::Sparse)
            .build()
            .unwrap();
        assert_eq!(sparse.eligibility_repr(), EligibilityRepr::Sparse);
        assert!(sparse.eligibility().is_sparse());
        assert_eq!(
            sparse.eligibility().num_eligible(),
            dense.eligibility().num_eligible()
        );
        // Bit-identical hit ratios on a shared placement.
        let mut placement = dense.empty_placement();
        for i in 0..3 {
            placement.place(ServerId(i % 2), ModelId(i)).unwrap();
        }
        assert_eq!(dense.hit_ratio(&placement), sparse.hit_ratio(&placement));
        // The representation choice survives a mobility re-derivation.
        let moved_positions: Vec<Point> = (0..8)
            .map(|i| Point::new(120.0 + 60.0 * i as f64, 400.0))
            .collect();
        let moved = sparse.with_user_positions(&moved_positions).unwrap();
        assert!(moved.eligibility().is_sparse());
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        for repr in [EligibilityRepr::Dense, EligibilityRepr::Sparse] {
            let base = build_scenario(8, 1.0);
            let mut incremental = Scenario::builder()
                .library(base.library().clone())
                .servers(base.servers().to_vec())
                .users(base.users().to_vec())
                .demand(base.demand().clone())
                .eligibility_repr(repr)
                .build()
                .unwrap();
            // Several slots of scattered moves, including cell crossings.
            let mut positions: Vec<Point> =
                incremental.users().iter().map(User::position).collect();
            for slot in 0..3 {
                for k in (slot % 2..8).step_by(2) {
                    positions[k] = Point::new(
                        120.0 + 90.0 * ((k + slot) % 7) as f64,
                        180.0 + 140.0 * ((k * slot) % 5) as f64,
                    );
                }
                let delta = incremental.update_user_positions(&positions).unwrap();
                assert!(!delta.is_empty());
                assert!(delta.refreshed_users().len() >= delta.moved_users().len());
                let rebuilt = incremental.with_user_positions(&positions).unwrap();
                // Bit-identical snapshot: every derived component agrees.
                assert_eq!(incremental, rebuilt);
            }
            // A no-op update reports an empty delta and changes nothing.
            let before = incremental.clone();
            let delta = incremental.update_user_positions(&positions).unwrap();
            assert!(delta.is_empty());
            assert_eq!(incremental, before);
        }
    }

    #[test]
    fn apply_user_moves_validates_and_is_sparse_in_cost() {
        let mut s = build_scenario(6, 1.0);
        let before = s.clone();
        // Unknown users are rejected without mutating anything.
        assert!(s.apply_user_moves(&[(9, Point::new(0.0, 0.0))]).is_err());
        assert_eq!(s, before);
        // Wrong position count is rejected.
        assert!(s.update_user_positions(&[Point::new(0.0, 0.0)]).is_err());
        assert_eq!(s, before);
        // A single short move refreshes only the mover unless a share
        // changed (the delta never exceeds the blast radius).
        let target = Point::new(s.users()[3].position().x + 1.0, s.users()[3].position().y);
        let delta = s.apply_user_moves(&[(3, target)]).unwrap();
        assert_eq!(delta.moved_users(), &[3]);
        for &k in delta.refreshed_users() {
            assert!(
                k == 3
                    || delta
                        .reallocated_servers()
                        .iter()
                        .any(|&m| { s.coverage().users_of_server(m).unwrap().contains(&k) })
            );
        }
        assert_eq!(
            s,
            before
                .with_user_positions(&s.users().iter().map(User::position).collect::<Vec<_>>(),)
                .unwrap()
        );
    }

    #[test]
    fn auto_repr_is_pinned_across_rederivations() {
        let s = build_scenario(8, 1.0);
        assert_eq!(s.requested_repr, EligibilityRepr::Auto);
        let positions: Vec<Point> = (0..8)
            .map(|i| Point::new(150.0 + 70.0 * i as f64, 300.0))
            .collect();
        // A rebuild resolves Auto once and pins the concrete choice.
        let rebuilt = s.with_user_positions(&positions).unwrap();
        assert_eq!(rebuilt.requested_repr, EligibilityRepr::Dense);
        assert_eq!(rebuilt.eligibility_repr(), EligibilityRepr::Dense);
        // The in-place path pins identically.
        let mut incremental = s.clone();
        incremental.update_user_positions(&positions).unwrap();
        assert_eq!(incremental.requested_repr, EligibilityRepr::Dense);
        assert_eq!(incremental, rebuilt);
    }

    #[test]
    fn empty_server_or_user_lists_are_rejected() {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(1);
        let mut rng = StdRng::seed_from_u64(1);
        let demand = DemandConfig::paper_defaults()
            .generate(1, library.num_models(), &mut rng)
            .unwrap();
        let err = Scenario::builder()
            .library(library.clone())
            .servers(vec![])
            .users_at(&[Point::new(0.0, 0.0)])
            .demand(demand.clone())
            .build();
        assert!(err.is_err());
        let err = Scenario::builder()
            .library(library)
            .servers(vec![EdgeServer::new(
                ServerId(0),
                Point::new(0.0, 0.0),
                100,
            )
            .unwrap()])
            .users(vec![])
            .demand(demand)
            .build();
        assert!(err.is_err());
    }
}
