//! Storage accounting with parameter sharing (Eq. 7).
//!
//! The bytes a server must provision for a set of cached models is the size
//! of the *union* of their parameter blocks:
//!
//! ```text
//! g_m(X_m) = Σ_{j ∈ J} D'_j · [ 1 − Π_{i ∈ I_j} (1 − x_{m,i}) ]
//! ```
//!
//! [`StorageTracker`] maintains that quantity incrementally for one server
//! as models are added or removed, exposing the *marginal* cost of adding a
//! model — the primitive both TrimCaching algorithms and the Independent
//! Caching baseline are built from. The Independent baseline uses
//! [`StorageTracker::naive_used_bytes`], which charges every model its full
//! size regardless of sharing.

use trimcaching_modellib::{BlockId, ModelId, ModelLibrary};

use crate::error::ScenarioError;

/// Incremental storage accounting for a single edge server.
#[derive(Debug, Clone)]
pub struct StorageTracker<'a> {
    library: &'a ModelLibrary,
    capacity_bytes: u64,
    /// Reference count per block (how many cached models contain it).
    block_refcount: Vec<u32>,
    /// Deduplicated bytes currently used (Eq. 7).
    used_bytes: u64,
    /// Sum of full model sizes currently cached (sharing-oblivious bytes).
    naive_used_bytes: u64,
    /// Models currently cached.
    cached: Vec<bool>,
}

impl<'a> StorageTracker<'a> {
    /// Creates an empty tracker for a server with the given capacity.
    pub fn new(library: &'a ModelLibrary, capacity_bytes: u64) -> Self {
        Self {
            library,
            capacity_bytes,
            block_refcount: vec![0; library.num_blocks()],
            used_bytes: 0,
            naive_used_bytes: 0,
            cached: vec![false; library.num_models()],
        }
    }

    /// The server capacity `Q_m` in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Deduplicated bytes currently used (`g_m` of the cached set).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes used if every cached model were stored without sharing.
    pub fn naive_used_bytes(&self) -> u64 {
        self.naive_used_bytes
    }

    /// Remaining capacity in bytes under shared storage.
    pub fn remaining_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }

    /// Whether the model is currently cached.
    pub fn contains(&self, model: ModelId) -> bool {
        self.cached.get(model.index()).copied().unwrap_or(false)
    }

    /// How many cached models reference block `j` (zero for unknown
    /// blocks). Block-granular caches use this to tell which of a
    /// model's blocks are marginal (refcount zero — their bytes must
    /// move over the backhaul) versus already provisioned by another
    /// cached model.
    pub fn block_refcount(&self, block: BlockId) -> u32 {
        self.block_refcount.get(block.index()).copied().unwrap_or(0)
    }

    /// The models currently cached, in ascending order.
    pub fn cached_models(&self) -> Vec<ModelId> {
        self.cached
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| ModelId(i))
            .collect()
    }

    /// Marginal (deduplicated) bytes needed to add `model`: the sizes of its
    /// blocks not already stored. Zero if the model is already cached.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown model.
    pub fn marginal_bytes(&self, model: ModelId) -> Result<u64, ScenarioError> {
        if self.contains(model) {
            return Ok(0);
        }
        let mut extra = 0u64;
        for &b in self.library.model(model)?.blocks() {
            if self.block_refcount[b.index()] == 0 {
                extra += self.library.block_size_bytes(b)?;
            }
        }
        Ok(extra)
    }

    /// Whether adding `model` keeps the deduplicated usage within capacity.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown model.
    pub fn fits(&self, model: ModelId) -> Result<bool, ScenarioError> {
        Ok(self.used_bytes + self.marginal_bytes(model)? <= self.capacity_bytes)
    }

    /// Adds `model` to the cache (regardless of capacity — callers that
    /// enforce the constraint should check [`StorageTracker::fits`] first).
    /// Returns the marginal bytes that were actually added.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown model.
    pub fn add(&mut self, model: ModelId) -> Result<u64, ScenarioError> {
        if self.contains(model) {
            return Ok(0);
        }
        let marginal = self.marginal_bytes(model)?;
        for &b in self.library.model(model)?.blocks() {
            self.block_refcount[b.index()] += 1;
        }
        self.used_bytes += marginal;
        self.naive_used_bytes += self.library.model_size_bytes(model)?;
        self.cached[model.index()] = true;
        Ok(marginal)
    }

    /// Bytes that removing `model` would free — the sizes of its blocks
    /// referenced by no other cached model. Zero if the model is not
    /// cached. This is the read-only counterpart of
    /// [`StorageTracker::remove`], used by online eviction policies to
    /// rank victims without mutating the cache: a model whose blocks are
    /// all shared with other cached models frees nothing and is free to
    /// keep.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown model.
    pub fn release_bytes(&self, model: ModelId) -> Result<u64, ScenarioError> {
        if !self.contains(model) {
            return Ok(0);
        }
        let mut freed = 0u64;
        for &b in self.library.model(model)?.blocks() {
            if self.block_refcount[b.index()] == 1 {
                freed += self.library.block_size_bytes(b)?;
            }
        }
        Ok(freed)
    }

    /// Removes `model` from the cache, returning the bytes freed (blocks no
    /// longer referenced by any cached model).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown model.
    pub fn remove(&mut self, model: ModelId) -> Result<u64, ScenarioError> {
        if !self.contains(model) {
            return Ok(0);
        }
        let mut freed = 0u64;
        for &b in self.library.model(model)?.blocks() {
            self.block_refcount[b.index()] -= 1;
            if self.block_refcount[b.index()] == 0 {
                freed += self.library.block_size_bytes(b)?;
            }
        }
        self.used_bytes -= freed;
        self.naive_used_bytes -= self.library.model_size_bytes(model)?;
        self.cached[model.index()] = false;
        Ok(freed)
    }
}

/// Computes `g_m` (Eq. 7) for an arbitrary model set without building a
/// tracker — a convenience wrapper over
/// [`ModelLibrary::union_size_bytes`].
pub fn shared_storage_bytes<It>(library: &ModelLibrary, models: It) -> u64
where
    It: IntoIterator<Item = ModelId>,
{
    library.union_size_bytes(models)
}

/// Sum of full model sizes for an arbitrary model set — the
/// sharing-oblivious storage charge used by the Independent Caching
/// baseline.
pub fn independent_storage_bytes<It>(library: &ModelLibrary, models: It) -> u64
where
    It: IntoIterator<Item = ModelId>,
{
    models
        .into_iter()
        .filter_map(|m| library.model_size_bytes(m).ok())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimcaching_modellib::ModelLibrary;

    fn library() -> ModelLibrary {
        let mut b = ModelLibrary::builder();
        b.add_model_with_blocks("m0", "t", &[("shared".into(), 100), ("m0/own".into(), 10)])
            .unwrap();
        b.add_model_with_blocks("m1", "t", &[("shared".into(), 100), ("m1/own".into(), 20)])
            .unwrap();
        b.add_model_with_blocks("m2", "t", &[("m2/own".into(), 50)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn marginal_cost_accounts_for_already_cached_blocks() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 1_000);
        assert_eq!(t.marginal_bytes(ModelId(0)).unwrap(), 110);
        t.add(ModelId(0)).unwrap();
        // m1 shares the 100-byte block, so only its own 20 bytes are new.
        assert_eq!(t.marginal_bytes(ModelId(1)).unwrap(), 20);
        assert_eq!(t.marginal_bytes(ModelId(2)).unwrap(), 50);
        // Adding an already-cached model costs nothing.
        assert_eq!(t.marginal_bytes(ModelId(0)).unwrap(), 0);
        assert_eq!(t.add(ModelId(0)).unwrap(), 0);
    }

    #[test]
    fn used_bytes_tracks_union_size() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 1_000);
        t.add(ModelId(0)).unwrap();
        t.add(ModelId(1)).unwrap();
        assert_eq!(t.used_bytes(), 130);
        assert_eq!(t.naive_used_bytes(), 110 + 120);
        assert_eq!(
            t.used_bytes(),
            shared_storage_bytes(&lib, [ModelId(0), ModelId(1)])
        );
        assert_eq!(
            t.naive_used_bytes(),
            independent_storage_bytes(&lib, [ModelId(0), ModelId(1)])
        );
        assert_eq!(t.remaining_bytes(), 870);
        assert_eq!(t.cached_models(), vec![ModelId(0), ModelId(1)]);
    }

    #[test]
    fn release_bytes_predicts_removal() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 1_000);
        t.add(ModelId(0)).unwrap();
        t.add(ModelId(1)).unwrap();
        // m0's shared block is still referenced by m1: only its own 10
        // bytes would come back.
        assert_eq!(t.release_bytes(ModelId(0)).unwrap(), 10);
        assert_eq!(t.release_bytes(ModelId(1)).unwrap(), 20);
        // Not cached -> nothing to free.
        assert_eq!(t.release_bytes(ModelId(2)).unwrap(), 0);
        let predicted = t.release_bytes(ModelId(0)).unwrap();
        assert_eq!(t.remove(ModelId(0)).unwrap(), predicted);
        // With m0 gone, removing m1 frees the shared block too.
        assert_eq!(t.release_bytes(ModelId(1)).unwrap(), 120);
        // Unknown ids short-circuit on the contains() check, like remove().
        assert_eq!(t.release_bytes(ModelId(9)).unwrap(), 0);
    }

    #[test]
    fn removal_frees_only_unreferenced_blocks() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 1_000);
        t.add(ModelId(0)).unwrap();
        t.add(ModelId(1)).unwrap();
        // Removing m0 keeps the shared block because m1 still needs it.
        let freed = t.remove(ModelId(0)).unwrap();
        assert_eq!(freed, 10);
        assert_eq!(t.used_bytes(), 120);
        // Removing m1 now frees the shared block too.
        let freed = t.remove(ModelId(1)).unwrap();
        assert_eq!(freed, 120);
        assert_eq!(t.used_bytes(), 0);
        assert_eq!(t.naive_used_bytes(), 0);
        // Removing an absent model is a no-op.
        assert_eq!(t.remove(ModelId(2)).unwrap(), 0);
    }

    #[test]
    fn fits_respects_shared_capacity() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 130);
        assert!(t.fits(ModelId(0)).unwrap());
        t.add(ModelId(0)).unwrap();
        // m1 needs only 20 extra bytes -> still fits in 130.
        assert!(t.fits(ModelId(1)).unwrap());
        t.add(ModelId(1)).unwrap();
        // m2 needs 50 more -> exceeds 130.
        assert!(!t.fits(ModelId(2)).unwrap());
        assert_eq!(t.capacity_bytes(), 130);
    }

    #[test]
    fn block_refcounts_follow_adds_and_removes() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 1_000);
        assert_eq!(t.block_refcount(BlockId(0)), 0);
        t.add(ModelId(0)).unwrap();
        t.add(ModelId(1)).unwrap();
        // Block 0 is the shared block of m0 and m1.
        assert_eq!(t.block_refcount(BlockId(0)), 2);
        t.remove(ModelId(0)).unwrap();
        assert_eq!(t.block_refcount(BlockId(0)), 1);
        // Unknown blocks report zero instead of erroring.
        assert_eq!(t.block_refcount(BlockId(99)), 0);
    }

    #[test]
    fn unknown_models_error() {
        let lib = library();
        let mut t = StorageTracker::new(&lib, 100);
        assert!(t.marginal_bytes(ModelId(9)).is_err());
        assert!(t.add(ModelId(9)).is_err());
        assert!(t.fits(ModelId(9)).is_err());
        assert!(!t.contains(ModelId(9)));
        // remove() short-circuits on the contains() check for unknown ids.
        assert_eq!(t.remove(ModelId(9)).unwrap(), 0);
    }

    #[test]
    fn helpers_ignore_unknown_ids() {
        let lib = library();
        assert_eq!(independent_storage_bytes(&lib, [ModelId(42)]), 0);
        assert_eq!(shared_storage_bytes(&lib, [ModelId(42)]), 0);
    }
}
