//! `trimcaching-sim` — command-line driver regenerating the paper's
//! figures.
//!
//! ```text
//! trimcaching-sim <experiment> [--paper|--fast] [--topologies N]
//!                 [--realisations N] [--csv] [--out FILE] [--dir DIR]
//!                 [--shards N] [--threads N] [--spec FILE]
//!
//! experiments: fig1 fig4a fig4b fig4c fig5a fig5b fig5c fig6a fig6b fig7
//!              serve serve-trace serve-blocks serve-adapt serve-adapt-trace
//!              serve-journal resume fork-ab journal-stats serve-faults
//!              replacement replacement-trigger lora-market city-scale
//!              serve-sharded serve-sharded-xl sweep sweep-report
//!              ablation-epsilon ablation-sharing ablation-zipf
//!              ablation-scaling ablation-backhaul ablation-deadline
//!              ablation-shadowing all
//! ```
//!
//! The default repetition counts are the `reduced` preset (15 topologies ×
//! 100 fading realisations), which preserves the paper's trends while
//! finishing in minutes; `--paper` selects the full 100 × 1000 setting.
//!
//! The durable subcommands (`serve-journal`, `resume`, `fork-ab`,
//! `journal-stats`) persist and re-open run artefacts under `--dir`
//! (default `target/durable`): `serve-journal` writes the journal and
//! checkpoint files, then `resume`, `fork-ab` and `journal-stats`
//! operate on them. They run one deterministic study run each and are
//! not part of `all`.
//!
//! The sharded subcommands (`serve-sharded`, `serve-sharded-xl`) drive
//! the region-sharded engine: `--shards` caps the shard-count sweep and
//! `--threads` sizes the worker pool (`0` = all cores). Both verify
//! byte-identity across worker-thread counts; `serve-sharded-xl` is the
//! million-user acceptance run and is deliberately not part of `all`.
//!
//! The sweep subcommands run declarative grids: `sweep` expands the
//! `--spec` file (a `key = value` sheet; omitted = the built-in smoke
//! grid), serves every cell across `--threads` workers and writes
//! `sweep_<name>.{csv,json,md}` under `--dir`; the artefact bytes are
//! identical for any worker count. `sweep-report` re-renders the
//! markdown from a previously written CSV without re-running anything,
//! verifying its fingerprint against the spec. Neither is part of
//! `all`.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use trimcaching_sim::experiments::{
    ablation, adapt, city, durable, faults, fig1, fig4, fig5, fig6, fig7, lora, replacement, serve,
    sharded, RunConfig,
};
use trimcaching_sim::montecarlo::MonteCarloConfig;
use trimcaching_sim::{sweep, SimError, SweepSpec};

/// Parsed command-line options.
struct Options {
    experiment: String,
    config: RunConfig,
    csv: bool,
    out: Option<String>,
    dir: PathBuf,
    shards: usize,
    threads: usize,
    spec: Option<PathBuf>,
}

fn print_usage() {
    eprintln!(
        "usage: trimcaching-sim <experiment> [--paper|--fast] [--topologies N] \
         [--realisations N] [--models-per-backbone N] [--seed N] [--csv] [--out FILE] \
         [--dir DIR] [--shards N] [--threads N]\n\
         experiments: fig1 fig4a fig4b fig4c fig5a fig5b fig5c fig6a fig6b fig7 \
         serve serve-trace serve-blocks serve-adapt serve-adapt-trace \
         serve-journal resume fork-ab journal-stats serve-faults replacement \
         replacement-trigger lora-market city-scale serve-sharded serve-sharded-xl \
         sweep sweep-report ablation-epsilon ablation-sharing ablation-zipf ablation-scaling \
         ablation-backhaul ablation-deadline ablation-shadowing all"
    );
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut experiment = None;
    let mut config = RunConfig::reduced();
    let mut csv = false;
    let mut out = None;
    let mut dir = PathBuf::from("target/durable");
    let mut shards = 4usize;
    let mut threads = 0usize;
    let mut spec = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => config = RunConfig::paper(),
            "--fast" => {
                config.monte_carlo = MonteCarloConfig {
                    topologies: 3,
                    fading_realisations: 20,
                    ..config.monte_carlo
                };
            }
            "--csv" => csv = true,
            "--topologies"
            | "--realisations"
            | "--models-per-backbone"
            | "--seed"
            | "--out"
            | "--dir"
            | "--shards"
            | "--threads"
            | "--spec" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("missing value for {arg}"))?;
                match arg.as_str() {
                    "--topologies" => {
                        config.monte_carlo.topologies = value
                            .parse()
                            .map_err(|_| format!("invalid count {value}"))?;
                    }
                    "--realisations" => {
                        config.monte_carlo.fading_realisations = value
                            .parse()
                            .map_err(|_| format!("invalid count {value}"))?;
                    }
                    "--models-per-backbone" => {
                        config.models_per_backbone = value
                            .parse()
                            .map_err(|_| format!("invalid count {value}"))?;
                    }
                    "--seed" => {
                        config.monte_carlo.seed =
                            value.parse().map_err(|_| format!("invalid seed {value}"))?;
                    }
                    "--out" => out = Some(value.clone()),
                    "--dir" => dir = PathBuf::from(value),
                    "--shards" => {
                        shards = value
                            .parse()
                            .map_err(|_| format!("invalid shard count {value}"))?;
                    }
                    "--threads" => {
                        threads = value
                            .parse()
                            .map_err(|_| format!("invalid thread count {value}"))?;
                    }
                    "--spec" => spec = Some(PathBuf::from(value)),
                    _ => unreachable!(),
                }
            }
            other if !other.starts_with("--") && experiment.is_none() => {
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Options {
        experiment: experiment.ok_or_else(|| "missing experiment name".to_string())?,
        config,
        csv,
        out,
        dir,
        shards,
        threads,
        spec,
    })
}

/// Runs one experiment and returns its rendered output.
/// Loads a sweep spec: parses `--spec` when given, else the built-in
/// smoke grid.
fn load_spec(path: Option<&Path>) -> Result<SweepSpec, SimError> {
    match path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| SimError::InvalidConfig {
                reason: format!("cannot read spec {}: {e}", path.display()),
            })?;
            sweep::parse_spec(&text)
        }
        None => Ok(SweepSpec::smoke()),
    }
}

/// Runs a sweep end to end: expands the spec, serves every cell and
/// writes the `sweep_<name>.{csv,json,md}` artefacts under `dir`.
fn run_sweep_cli(
    spec_path: Option<&Path>,
    dir: &Path,
    threads: usize,
    csv: bool,
) -> Result<String, SimError> {
    let spec = load_spec(spec_path)?;
    eprintln!(
        "[trimcaching-sim] sweep '{}': {} cells, fingerprint {:016x}",
        spec.name,
        spec.num_cells(),
        spec.fingerprint()
    );
    let report = sweep::run_sweep(&spec, threads)?;
    let csv_text = sweep::to_csv(&report);
    let json_text = sweep::to_json(&report);
    let md_text = sweep::to_markdown(&report);
    std::fs::create_dir_all(dir).map_err(|e| SimError::InvalidConfig {
        reason: format!("cannot create {}: {e}", dir.display()),
    })?;
    for (ext, text) in [("csv", &csv_text), ("json", &json_text), ("md", &md_text)] {
        let path = dir.join(format!("sweep_{}.{ext}", spec.name));
        std::fs::write(&path, text).map_err(|e| SimError::InvalidConfig {
            reason: format!("cannot write {}: {e}", path.display()),
        })?;
        eprintln!("[trimcaching-sim] wrote {}", path.display());
    }
    Ok(if csv { csv_text } else { md_text })
}

/// Re-renders the markdown report from a previously written sweep CSV,
/// verifying its fingerprint against the spec.
fn sweep_report_cli(spec_path: Option<&Path>, dir: &Path) -> Result<String, SimError> {
    let spec = load_spec(spec_path)?;
    let path = dir.join(format!("sweep_{}.csv", spec.name));
    let text = std::fs::read_to_string(&path).map_err(|e| SimError::InvalidConfig {
        reason: format!("cannot read {} (run 'sweep' first): {e}", path.display()),
    })?;
    let report = sweep::parse_csv(&text)?;
    if report.fingerprint != spec.fingerprint() {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "sweep CSV fingerprint {:016x} does not match the spec's {:016x} —                  the artefact was produced by a different grid",
                report.fingerprint,
                spec.fingerprint()
            ),
        });
    }
    Ok(sweep::to_markdown(&report))
}

fn run_experiment(
    name: &str,
    config: &RunConfig,
    csv: bool,
    dir: &Path,
    shards: usize,
    threads: usize,
    spec: Option<&Path>,
) -> Result<String, SimError> {
    let render_table = |t: trimcaching_sim::ExperimentTable| {
        if csv {
            t.to_csv()
        } else {
            t.to_markdown()
        }
    };
    let render_comparison = |t: trimcaching_sim::ComparisonTable| {
        if csv {
            t.to_csv()
        } else {
            t.to_markdown()
        }
    };
    Ok(match name {
        "fig1" => render_table(fig1::accuracy_vs_frozen_layers()),
        "fig4a" => render_table(fig4::capacity_sweep(config)?),
        "fig4b" => render_table(fig4::server_sweep(config)?),
        "fig4c" => render_table(fig4::user_sweep(config)?),
        "fig5a" => render_table(fig5::capacity_sweep(config)?),
        "fig5b" => render_table(fig5::server_sweep(config)?),
        "fig5c" => render_table(fig5::user_sweep(config)?),
        "fig6a" => render_comparison(fig6::special_case_vs_optimal(config)?),
        "fig6b" => render_comparison(fig6::general_case_runtime(config)?),
        "fig7" => render_table(fig7::mobility_robustness(config)?),
        "serve" => render_table(serve::policy_comparison(config)?),
        "serve-trace" => render_table(serve::warm_start_trace(config)?),
        "serve-blocks" => render_table(serve::block_fill_comparison(config)?),
        "serve-adapt" => render_table(adapt::adaptive_serving(config)?),
        "serve-adapt-trace" => render_table(adapt::adaptive_trace(config)?),
        "serve-journal" => render_table(durable::serve_journal(config, dir)?),
        "resume" => render_table(durable::resume_run(config, dir)?),
        "fork-ab" => render_table(durable::fork_ab(config, dir)?),
        "journal-stats" => render_table(durable::journal_stats(dir)?),
        "serve-faults" => render_table(faults::failover_study(config)?),
        "replacement" => render_table(replacement::replacement_study(config)?),
        "replacement-trigger" => render_table(replacement::trigger_sweep(config)?),
        "lora-market" => render_table(lora::capacity_sweep(config)?),
        "city-scale" => render_table(city::city_scale_study(config)?),
        "serve-sharded" => render_table(sharded::sharded_scaling_study(config, shards, threads)?),
        "serve-sharded-xl" => render_table(sharded::sharded_xl_study(config, threads)?),
        "sweep" => run_sweep_cli(spec, dir, threads, csv)?,
        "sweep-report" => sweep_report_cli(spec, dir)?,
        "ablation-epsilon" => render_table(ablation::epsilon_sweep(config)?),
        "ablation-sharing" => render_table(ablation::sharing_depth_sweep(config)?),
        "ablation-zipf" => render_table(ablation::zipf_sweep(config)?),
        "ablation-scaling" => render_table(ablation::library_scaling(config)?),
        "ablation-backhaul" => render_table(ablation::backhaul_sweep(config)?),
        "ablation-deadline" => render_table(ablation::deadline_sweep(config)?),
        "ablation-shadowing" => render_table(ablation::shadowing_sweep(config)?),
        "all" => {
            let mut out = String::new();
            for exp in [
                "fig1",
                "fig4a",
                "fig4b",
                "fig4c",
                "fig5a",
                "fig5b",
                "fig5c",
                "fig6a",
                "fig6b",
                "fig7",
                "serve",
                "serve-trace",
                "serve-blocks",
                "serve-adapt",
                "serve-adapt-trace",
                "serve-faults",
                "replacement",
                "replacement-trigger",
                "lora-market",
                "city-scale",
                "ablation-epsilon",
                "ablation-sharing",
                "ablation-zipf",
                "ablation-scaling",
                "ablation-backhaul",
                "ablation-deadline",
                "ablation-shadowing",
            ] {
                eprintln!("[trimcaching-sim] running {exp} ...");
                out.push_str(&run_experiment(
                    exp, config, csv, dir, shards, threads, spec,
                )?);
            }
            out
        }
        other => {
            return Err(SimError::InvalidConfig {
                reason: format!("unknown experiment {other}"),
            })
        }
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match run_experiment(
        &options.experiment,
        &options.config,
        options.csv,
        &options.dir,
        options.shards,
        options.threads,
        options.spec.as_deref(),
    ) {
        Ok(rendered) => {
            if let Some(path) = options.out {
                match std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(rendered.as_bytes()))
                {
                    Ok(()) => eprintln!("[trimcaching-sim] wrote {path}"),
                    Err(e) => {
                        eprintln!("error writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{rendered}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
