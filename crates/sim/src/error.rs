//! Error type for the simulation harness.

use std::fmt;

use trimcaching_modellib::ModelLibError;
use trimcaching_placement::PlacementError;
use trimcaching_runtime::RuntimeError;
use trimcaching_scenario::ScenarioError;

/// Errors produced by the simulation harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An experiment or topology configuration was invalid.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A placement algorithm failed.
    Placement(PlacementError),
    /// The scenario layer failed.
    Scenario(ScenarioError),
    /// The model-library layer failed.
    ModelLib(ModelLibError),
    /// The online serving runtime failed.
    Runtime(RuntimeError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::Placement(e) => write!(f, "placement error: {e}"),
            SimError::Scenario(e) => write!(f, "scenario error: {e}"),
            SimError::ModelLib(e) => write!(f, "model library error: {e}"),
            SimError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Placement(e) => Some(e),
            SimError::Scenario(e) => Some(e),
            SimError::ModelLib(e) => Some(e),
            SimError::Runtime(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        SimError::Placement(e)
    }
}

impl From<ScenarioError> for SimError {
    fn from(e: ScenarioError) -> Self {
        SimError::Scenario(e)
    }
}

impl From<ModelLibError> for SimError {
    fn from(e: ModelLibError) -> Self {
        SimError::ModelLib(e)
    }
}

impl From<RuntimeError> for SimError {
    fn from(e: RuntimeError) -> Self {
        SimError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions_work() {
        use std::error::Error;
        let e = SimError::InvalidConfig {
            reason: "zero topologies".into(),
        };
        assert!(e.to_string().contains("zero topologies"));
        assert!(e.source().is_none());
        let e: SimError = PlacementError::InvalidConfig {
            reason: "epsilon".into(),
        }
        .into();
        assert!(matches!(e, SimError::Placement(_)));
        assert!(e.source().is_some());
        let e: SimError = ScenarioError::MissingComponent { component: "x" }.into();
        assert!(matches!(e, SimError::Scenario(_)));
        let e: SimError = ModelLibError::UnknownBlock { block: 0 }.into();
        assert!(matches!(e, SimError::ModelLib(_)));
        let e: SimError = RuntimeError::InvalidConfig {
            reason: "rate".into(),
        }
        .into();
        assert!(matches!(e, SimError::Runtime(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
