//! Ablation studies on the reproduction's design choices (beyond the
//! paper's own figures).
//!
//! * [`epsilon_sweep`] — how the DP rounding parameter ε trades cache hit
//!   ratio against running time (quantifies Proposition 4 empirically);
//! * [`sharing_depth_sweep`] — how the hit-ratio gain of TrimCaching over
//!   Independent Caching depends on how deeply downstream models freeze
//!   their backbones (i.e. on the shared fraction of bytes);
//! * [`zipf_sweep`] — sensitivity of all three algorithms to the request
//!   popularity skew;
//! * [`library_scaling`] — running time of Spec/Gen/Independent as the
//!   model library grows;
//! * [`backhaul_sweep`] — how the effective edge-to-edge throughput changes
//!   the value of relayed delivery (Eq. 5) and hence of careful placement;
//! * [`deadline_sweep`] — sensitivity to the end-to-end latency budgets
//!   `T̄_{k,i}`;
//! * [`shadowing_sweep`] — robustness of expected-rate placements when the
//!   channel additionally sees log-normal shadowing the optimiser did not
//!   model.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching_modellib::builders::{Backbone, SpecialCaseBuilder};
use trimcaching_placement::{
    IndependentCaching, PlacementAlgorithm, TrimCachingGen, TrimCachingSpec,
};
use trimcaching_wireless::shadowing::ShadowedRayleigh;

use super::{sweep, LibraryKind, RunConfig};
use crate::montecarlo::evaluate_algorithms;
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// The ε values swept by [`epsilon_sweep`].
pub const EPSILON_POINTS: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.5];

/// Ablation: cache hit ratio and running time of TrimCaching Spec as a
/// function of the rounding parameter ε.
pub fn epsilon_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
    let mut table = ExperimentTable::new(
        "ablation-epsilon",
        "TrimCaching Spec: effect of the DP rounding parameter ε (Q = 0.75 GB)",
        "Rounding parameter ε",
        "Cache hit ratio / runtime",
        vec!["hit ratio".into(), "runtime (s)".into()],
    );
    for &epsilon in &EPSILON_POINTS {
        let spec = TrimCachingSpec::new().with_epsilon(epsilon);
        let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec];
        let samples = evaluate_algorithms(&library, &topology, &algorithms, &config.monte_carlo)?;
        table.push_row(
            epsilon,
            vec![samples[0].hit_ratio(), samples[0].runtime_s()],
        );
    }
    Ok(table)
}

/// Ablation: hit-ratio gain of sharing-aware placement as a function of the
/// freezing depth (and hence the fraction of shared bytes).
///
/// The x axis is the fraction of each backbone's freeze range used
/// (0 = freeze at the shallow end of the paper range, 1 = at the deep end).
pub fn sharing_depth_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let topology = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let mut table = ExperimentTable::new(
        "ablation-sharing",
        "Hit-ratio gain vs. freezing depth (shared fraction of model bytes)",
        "Freeze-depth fraction of the paper range",
        "Cache hit ratio",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
    );
    for &fraction in &fractions {
        // Rebuild the backbone family with a single freeze depth placed at
        // the requested fraction of each paper range.
        let backbones: Vec<Backbone> = Backbone::paper_family()
            .iter()
            .map(|bb| {
                let (lo, hi) = bb.freeze_range();
                let depth = lo + ((hi - lo) as f64 * fraction).round() as usize;
                Backbone::new(
                    bb.name().to_string(),
                    bb.layer_sizes_bytes().to_vec(),
                    (depth.max(1), depth.max(1)),
                    bb.head_size_bytes(),
                )
                .expect("paper backbones remain valid at any depth in range")
            })
            .collect();
        let library = SpecialCaseBuilder::with_backbones(backbones)
            .models_per_backbone(config.models_per_backbone)
            .build(config.library_seed);
        let samples = evaluate_algorithms(&library, &topology, &algorithms, &config.monte_carlo)?;
        table.push_row(fraction, samples.iter().map(|s| s.hit_ratio()).collect());
    }
    Ok(table)
}

/// Ablation: sensitivity of the three algorithms to the Zipf popularity
/// exponent.
pub fn zipf_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let exponents = [0.0, 0.4, 0.8, 1.2, 1.6];
    let library = config.build_library(LibraryKind::Special);
    let spec = TrimCachingSpec::new();
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = exponents
        .iter()
        .map(|&s| {
            let mut topo = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
            topo.demand.zipf_exponent = s;
            (s, topo)
        })
        .collect();
    sweep(
        "ablation-zipf",
        "Sensitivity to the Zipf popularity exponent (Q = 0.75 GB)",
        "Zipf exponent",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Ablation: single-topology running time of the three algorithms as the
/// library size grows.
pub fn library_scaling(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let sizes = [2usize, 5, 10, 20];
    let topology = TopologyConfig::paper_defaults();
    let spec = TrimCachingSpec::new();
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let mut table = ExperimentTable::new(
        "ablation-scaling",
        "Optimisation time vs. library size (single topology, seconds)",
        "Models per backbone",
        "Running time (s)",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
    );
    for &per_backbone in &sizes {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(per_backbone)
            .build(config.library_seed);
        let scenario = topology.generate(&library, config.monte_carlo.seed, 0)?;
        let mut cells = Vec::new();
        for algorithm in &algorithms {
            // audit:allow(wall-clock): times the placement solve for the ablation's runtime column; reporting only, never simulated time
            let start = Instant::now();
            let outcome = algorithm.place(&scenario)?;
            let elapsed = start
                .elapsed()
                .as_secs_f64()
                .max(outcome.runtime.as_secs_f64());
            cells.push(Measurement {
                mean: elapsed,
                std_dev: 0.0,
            });
        }
        table.push_row((per_backbone * 3) as f64, cells);
    }
    Ok(table)
}

/// Effective per-transfer backhaul throughputs (Gbps) swept by
/// [`backhaul_sweep`].
pub const BACKHAUL_POINTS_GBPS: [f64; 5] = [0.1, 0.5, 1.0, 5.0, 10.0];

/// Ablation: sensitivity to the effective edge-to-edge throughput used for
/// relayed delivery (Eq. 5). The paper provisions 10 Gbps links; the
/// reproduction defaults to 1 Gbps effective per transfer (see DESIGN.md),
/// and this sweep shows how that choice moves the curves.
pub fn backhaul_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let spec = TrimCachingSpec::new();
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = BACKHAUL_POINTS_GBPS
        .iter()
        .map(|&gbps| {
            let mut topo = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
            topo.backhaul_rate_bps = gbps * 1.0e9;
            (gbps, topo)
        })
        .collect();
    sweep(
        "ablation-backhaul",
        "Sensitivity to the effective edge-to-edge throughput (Q = 0.75 GB)",
        "Effective backhaul throughput (Gbps)",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Ablation: sensitivity to the end-to-end latency budget `T̄_{k,i}`. The x
/// axis scales the paper's `[0.5, 1]` s budget range.
pub fn deadline_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let scales = [0.4, 0.7, 1.0, 1.5, 2.0];
    let library = config.build_library(LibraryKind::Special);
    let spec = TrimCachingSpec::new();
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = scales
        .iter()
        .map(|&scale| {
            let mut topo = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
            let (lo, hi) = TopologyConfig::paper_defaults().demand.deadline_range_s;
            topo.demand.deadline_range_s = (lo * scale, hi * scale);
            (scale, topo)
        })
        .collect();
    sweep(
        "ablation-deadline",
        "Sensitivity to the end-to-end latency budget (scale of the paper's [0.5, 1] s range)",
        "Deadline scale factor",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Log-normal shadowing spreads (dB) swept by [`shadowing_sweep`].
pub const SHADOWING_POINTS_DB: [f64; 5] = [0.0, 2.0, 4.0, 6.0, 8.0];

/// Ablation: placements are still decided on expected (shadowing-free)
/// rates, but the achieved hit ratio is evaluated under shadowed Rayleigh
/// channels of increasing spread — a robustness check the paper does not
/// run.
pub fn shadowing_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults().with_capacity_gb(0.75);
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let realisations = config.monte_carlo.fading_realisations.max(1);

    let mut table = ExperimentTable::new(
        "ablation-shadowing",
        "Achieved hit ratio under unmodelled log-normal shadowing (Q = 0.75 GB)",
        "Shadowing spread (dB)",
        "Cache hit ratio",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
    );
    for &sigma_db in &SHADOWING_POINTS_DB {
        let fading = ShadowedRayleigh::with_sigma_db(sigma_db);
        let mut per_algorithm: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for topo_index in 0..config.monte_carlo.topologies {
            let scenario =
                topology.generate(&library, config.monte_carlo.seed, topo_index as u64)?;
            for (a, algorithm) in algorithms.iter().enumerate() {
                let placement = algorithm.place(&scenario)?.placement;
                let mut rng = StdRng::seed_from_u64(
                    config
                        .monte_carlo
                        .seed
                        .wrapping_add(topo_index as u64)
                        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                );
                let hit = scenario.average_hit_ratio_under(
                    &placement,
                    &fading,
                    realisations,
                    &mut rng,
                )?;
                per_algorithm[a].push(hit);
            }
        }
        table.push_row(
            sigma_db,
            per_algorithm
                .iter()
                .map(|samples| Measurement::from_samples(samples))
                .collect(),
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    fn tiny_config() -> RunConfig {
        RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 21,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 21,
        }
    }

    #[test]
    fn epsilon_sweep_has_one_row_per_epsilon() {
        let table = epsilon_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), EPSILON_POINTS.len());
        for row in &table.rows {
            assert!((0.0..=1.0).contains(&row.cells[0].mean));
            assert!(row.cells[1].mean >= 0.0);
        }
    }

    #[test]
    fn sharing_depth_sweep_shows_gen_at_or_above_independent() {
        let table = sharing_depth_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), 5);
        let gen = table.series_means("trimcaching-gen").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (g, i) in gen.iter().zip(&ind) {
            assert!(g >= &(i - 1e-9));
        }
    }

    #[test]
    fn zipf_sweep_and_scaling_produce_tables() {
        let zipf = zipf_sweep(&tiny_config()).unwrap();
        assert_eq!(zipf.rows.len(), 5);
        let scaling = library_scaling(&tiny_config()).unwrap();
        assert_eq!(scaling.rows.len(), 4);
        for row in &scaling.rows {
            for cell in &row.cells {
                assert!(cell.mean >= 0.0);
            }
        }
    }

    #[test]
    fn backhaul_sweep_is_monotone_for_the_sharing_aware_greedy() {
        let table = backhaul_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), BACKHAUL_POINTS_GBPS.len());
        // Faster backhaul widens the set of eligible servers; the greedy is
        // a heuristic, so we only require the overall trend (and validity).
        let gen = table.series_means("trimcaching-gen").unwrap();
        assert!(gen.iter().all(|h| (0.0..=1.0).contains(h)));
        assert!(
            gen.last().unwrap() >= &(gen[0] - 0.02),
            "backhaul sweep trend inverted: {gen:?}"
        );
    }

    #[test]
    fn deadline_sweep_trends_upward_with_the_budget() {
        let table = deadline_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), 5);
        let gen = table.series_means("trimcaching-gen").unwrap();
        assert!(gen.iter().all(|h| (0.0..=1.0).contains(h)));
        assert!(
            gen.last().unwrap() >= &(gen[0] - 0.02),
            "deadline sweep trend inverted: {gen:?}"
        );
    }

    #[test]
    fn shadowing_sweep_keeps_hit_ratios_in_range() {
        let table = shadowing_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), SHADOWING_POINTS_DB.len());
        for row in &table.rows {
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.mean));
            }
        }
        // Sharing-aware placement keeps its edge over the baseline even
        // under unmodelled shadowing.
        let gen = table.series_means("trimcaching-gen").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (g, i) in gen.iter().zip(&ind) {
            assert!(g >= &(i - 0.05));
        }
    }
}
