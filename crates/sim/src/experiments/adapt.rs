//! Adaptive serving under demand drift: static placement vs oracle
//! replan vs the online re-placement controller.
//!
//! The placement algorithms optimise a frozen demand snapshot; this
//! driver measures what happens when the snapshot lies. A piecewise
//! non-stationary workload serves the paper's Zipf demand for the first
//! ten minutes, then *flips* the popularity ranking (a half-library
//! rotation — the sharpest realistic drift: yesterday's cold models are
//! today's hot ones). Three systems replay the identical request
//! stream:
//!
//! * **static** — the TrimCaching Gen warm start, never updated: the
//!   paper's Fig. 7 operating mode;
//! * **oracle-replan** — at the moment of the shift, a re-plan solved
//!   on the *true* post-shift demand is staged through the reconciler
//!   (an upper bound no online system can beat: perfect knowledge, paid
//!   reconfiguration);
//! * **online-controller** — the `runtime::control` loop: EWMA demand
//!   estimation from served requests, drift detection on the windowed
//!   hit-ratio trace, re-plans over the *estimated* demand.
//!
//! All reconfiguration bytes cross the modelled backhaul links, so the
//! cost of adapting is visible in the same backhaul/latency columns as
//! regular misses.

use trimcaching_placement::TrimCachingGenLazy;
use trimcaching_runtime::control::DriftConfig;
use trimcaching_runtime::{
    rotate_popularity, ControlConfig, CostAwareLfu, ServeConfig, ServeEngine, ServeReport, Workload,
};
use trimcaching_scenario::Scenario;

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Simulated run length in seconds.
const DURATION_S: f64 = 1800.0;
/// The popularity flip fires here.
const SHIFT_S: f64 = 600.0;
/// Post-shift steady state is measured over windows ending after this.
const STEADY_FROM_S: f64 = 1200.0;
/// Per-user request rate — denser than the paper's 0.05 Hz so the
/// estimator sees enough evidence per control tick.
const RATE_HZ: f64 = 0.2;

/// The three variants, in reporting order.
const VARIANTS: [&str; 3] = ["static", "oracle-replan", "online-controller"];

/// One full adaptive-serving comparison: the three reports replaying
/// the identical seeded request stream.
struct AdaptRuns {
    reports: [ServeReport; 3],
}

/// The serving configuration of the study (control disabled; variants
/// toggle it).
fn serve_config(config: &RunConfig) -> ServeConfig {
    ServeConfig::paper_defaults()
        .with_duration_s(DURATION_S)
        .with_request_rate_hz(RATE_HZ)
        .with_seed(config.monte_carlo.seed)
}

/// The controller tuning of the study: 30 s ticks, 15% sustained-drop
/// trigger with two-tick patience, three-minute cool-down. Public so
/// the acceptance tests assert against exactly the configuration the
/// recorded experiment ran.
pub fn study_control_config() -> ControlConfig {
    ControlConfig {
        tick_s: 30.0,
        estimator_alpha: 0.4,
        min_observed_requests: 300,
        drift: DriftConfig {
            cooldown_s: 180.0,
            ..DriftConfig::paper_defaults()
        },
    }
}

/// The demand-shift topology: the paper's footprint with capacity tight
/// enough that the placement decision matters, and a *shared* (global)
/// popularity ranking so the flip moves every user's demand coherently.
fn shifted_scenario(config: &RunConfig) -> Result<Scenario, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let mut topology = TopologyConfig::paper_defaults().with_capacity_gb(0.25);
    topology.demand.personalised_popularity = false;
    topology.generate(&library, config.monte_carlo.seed, 0)
}

/// Runs the three variants over the same flip workload.
fn run_variants(config: &RunConfig) -> Result<AdaptRuns, SimError> {
    let scenario = shifted_scenario(config)?;
    let base = scenario.demand();
    let flipped = rotate_popularity(base, scenario.num_models() / 2)?;
    let workload = Workload::piecewise(&[(0.0, base), (SHIFT_S, &flipped)], RATE_HZ)?;
    let initial = TrimCachingGenLazy::new()
        .place_with_demand(&scenario, base)?
        .placement;
    let oracle_target = TrimCachingGenLazy::new()
        .place_with_demand(&scenario, &flipped)?
        .placement;
    let base_config = serve_config(config);

    let run = |serve_config: ServeConfig,
               oracle: Option<&trimcaching_scenario::Placement>|
     -> Result<ServeReport, SimError> {
        let mut engine = ServeEngine::new(&scenario, &CostAwareLfu, serve_config)?;
        engine.set_workload(workload.clone())?;
        engine.warm_start(&initial)?;
        if let Some(target) = oracle {
            engine.schedule_reconcile(SHIFT_S, target.clone())?;
        }
        Ok(engine.run()?)
    };

    let static_run = run(base_config.clone(), None)?;
    let oracle_run = run(base_config.clone(), Some(&oracle_target))?;
    let controller_run = run(base_config.with_control(study_control_config()), None)?;
    Ok(AdaptRuns {
        reports: [static_run, oracle_run, controller_run],
    })
}

/// Hit ratio over the windows ending after `from_s` — the post-shift
/// steady state when `from_s` leaves room for detection and staged
/// reconciliation (zero when no window saw traffic).
pub fn hit_ratio_after(report: &ServeReport, from_s: f64) -> f64 {
    let (mut hits, mut requests) = (0u64, 0u64);
    for w in report.metrics.windows() {
        if w.end_s > from_s {
            hits += w.hits;
            requests += w.requests;
        }
    }
    if requests == 0 {
        0.0
    } else {
        hits as f64 / requests as f64
    }
}

/// Windowed hit-ratio trace of the three variants under the mid-run
/// popularity flip.
///
/// # Errors
///
/// Propagates topology, placement and runtime errors.
pub fn adaptive_trace(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let runs = run_variants(config)?;
    let mut table = ExperimentTable::new(
        "serve-adapt-trace",
        "Adaptive serving: windowed hit ratio across a mid-run popularity flip (600 s)",
        "Time (s)",
        "Windowed cache hit ratio",
        VARIANTS.iter().map(|v| v.to_string()).collect(),
    );
    let windows: Vec<_> = runs.reports[0].metrics.windows().to_vec();
    for (w, point) in windows.iter().enumerate() {
        table.push_row(
            point.end_s,
            runs.reports
                .iter()
                .map(|r| Measurement {
                    mean: r.metrics.windows().get(w).map_or(0.0, |p| p.hit_ratio()),
                    std_dev: 0.0,
                })
                .collect(),
        );
    }
    Ok(table)
}

/// Summary comparison: overall and post-shift steady-state hit ratio,
/// p95 latency, total backhaul traffic and the reconfiguration share of
/// it, and re-plans fired — one row per variant.
///
/// # Errors
///
/// Propagates topology, placement and runtime errors.
pub fn adaptive_serving(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let runs = run_variants(config)?;
    let mut table = ExperimentTable::new(
        "serve-adapt",
        "Adaptive serving under a 600 s popularity flip \
         (rows: 0 = static, 1 = oracle-replan, 2 = online-controller)",
        "Variant",
        "Metric value",
        vec![
            "hit-ratio".into(),
            "post-shift-hit-ratio".into(),
            "p95-latency-ms".into(),
            "backhaul-MB".into(),
            "reconfig-MB".into(),
            "replans".into(),
        ],
    );
    for (v, report) in runs.reports.iter().enumerate() {
        let m = &report.metrics;
        table.push_row(
            v as f64,
            vec![
                Measurement {
                    mean: m.hit_ratio(),
                    std_dev: 0.0,
                },
                Measurement {
                    mean: hit_ratio_after(report, STEADY_FROM_S),
                    std_dev: 0.0,
                },
                Measurement {
                    mean: m.p95_latency_s().unwrap_or(0.0) * 1e3,
                    std_dev: 0.0,
                },
                Measurement {
                    mean: m.backhaul_bytes_moved as f64 / 1e6,
                    std_dev: 0.0,
                },
                Measurement {
                    mean: m.reconcile_bytes_moved as f64 / 1e6,
                    std_dev: 0.0,
                },
                Measurement {
                    mean: m.replans_triggered as f64,
                    std_dev: 0.0,
                },
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_trace_tables_are_structurally_sound() {
        let config = RunConfig::smoke();
        let summary = adaptive_serving(&config).unwrap();
        assert_eq!(summary.id, "serve-adapt");
        assert_eq!(summary.rows.len(), 3);
        assert_eq!(summary.series.len(), 6);
        for row in &summary.rows {
            let hit = row.cells[0].mean;
            assert!((0.0..=1.0).contains(&hit));
            let backhaul = row.cells[3].mean;
            let reconfig = row.cells[4].mean;
            assert!(
                reconfig <= backhaul + 1e-9,
                "reconfiguration traffic is part of the backhaul total"
            );
        }
        // Static never re-plans; the oracle re-plans exactly once.
        assert_eq!(summary.rows[0].cells[5].mean, 0.0);
        assert_eq!(summary.rows[1].cells[5].mean, 1.0);
        // Only the oracle and controller move reconfiguration bytes.
        assert_eq!(summary.rows[0].cells[4].mean, 0.0);

        let trace = adaptive_trace(&config).unwrap();
        assert_eq!(trace.id, "serve-adapt-trace");
        assert_eq!(trace.series.len(), 3);
        assert_eq!(trace.rows.len(), 30, "1800 s of 60 s windows");
    }
}
