//! City-scale experiment: lazy-greedy placement on coverage-pruned
//! sparse scenarios.
//!
//! The paper's evaluation stops at `M = 10` servers; this driver sweeps
//! the server intensity of a Poisson-deployed district
//! ([`CityScaleConfig`]) and runs the CELF lazy greedy against the
//! popularity baseline on scenarios built with the sparse eligibility
//! representation — the regime where the dense `M × K × I` tensor would
//! be mostly `false` (the table's `eligibility-density` series records
//! just how sparse the indicator is).

use trimcaching_placement::{PlacementAlgorithm, TopPopularity, TrimCachingGenLazy};

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::CityScaleConfig;
use crate::SimError;

/// The district template every row scales: a 2 km × 2 km area with 1 000
/// users, sparse eligibility forced. Capacity is tightened to 0.4 GB so
/// the servers cannot simply cache the whole library and the placement
/// decision actually matters.
fn district() -> CityScaleConfig {
    let mut city = CityScaleConfig::district().with_users(1_000);
    city.area_side_m = 2_000.0;
    city.capacity_gb = 0.4;
    city
}

/// Hit ratio of the lazy greedy and the popularity baseline (plus the
/// eligibility density diagnostic) versus server intensity, averaged
/// over `config.monte_carlo.topologies` Poisson deployments.
///
/// # Errors
///
/// Propagates topology and placement errors.
pub fn city_scale_study(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    if config.monte_carlo.topologies == 0 {
        return Err(SimError::InvalidConfig {
            reason: "at least one topology is required".into(),
        });
    }
    let library = config.build_library(LibraryKind::Special);
    let mut table = ExperimentTable::new(
        "city-scale",
        "City scale: lazy greedy on Poisson deployments (sparse eligibility)",
        "Server intensity (servers per km²)",
        "Cache hit ratio (algorithms) / fraction (density)",
        vec![
            "trimcaching-gen-lazy".into(),
            "top-popularity".into(),
            "eligibility-density".into(),
        ],
    );
    for lambda in [4.0, 8.0, 16.0] {
        let city = district().with_servers_per_km2(lambda);
        let mut lazy_samples = Vec::new();
        let mut popularity_samples = Vec::new();
        let mut density_samples = Vec::new();
        for index in 0..config.monte_carlo.topologies {
            let scenario = city.generate(&library, config.monte_carlo.seed, index as u64)?;
            debug_assert!(scenario.eligibility().is_sparse());
            density_samples.push(scenario.eligibility().density());
            lazy_samples.push(TrimCachingGenLazy::new().place(&scenario)?.hit_ratio);
            popularity_samples.push(TopPopularity::new().place(&scenario)?.hit_ratio);
        }
        table.push_row(
            lambda,
            vec![
                Measurement::from_samples(&lazy_samples),
                Measurement::from_samples(&popularity_samples),
                Measurement::from_samples(&density_samples),
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    #[test]
    fn city_study_runs_at_smoke_scale() {
        let config = RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 2,
                fading_realisations: 1,
                seed: 5,
                threads: 0,
            },
            models_per_backbone: 2,
            library_seed: 5,
        };
        let table = city_scale_study(&config).unwrap();
        assert_eq!(table.id, "city-scale");
        assert_eq!(table.rows.len(), 3);
        let lazy = table.series_means("trimcaching-gen-lazy").unwrap();
        let popularity = table.series_means("top-popularity").unwrap();
        for (l, p) in lazy.iter().zip(&popularity) {
            assert!((0.0..=1.0).contains(l));
            // The coverage/latency-aware greedy never loses to blind
            // popularity replication.
            assert!(l >= &(p - 1e-9), "lazy {l} < popularity {p}");
        }
        // The indicator really is sparse at city scale.
        for d in table.series_means("eligibility-density").unwrap() {
            assert!(d < 0.5, "density {d} should be far below dense");
        }
        assert!(city_scale_study(&RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 0,
                ..config.monte_carlo
            },
            ..config
        })
        .is_err());
    }
}
