//! Durable serving: journaled runs, checkpoint resume and A/B forks
//! over the `runtime::persist` subsystem.
//!
//! City-scale serving runs take long enough that crashes, deploys and
//! pre-emption are facts of life. These drivers exercise the durable
//! path end to end from the command line:
//!
//! * [`serve_journal`] — one fully journaled and checkpointed run,
//!   reporting the live metrics next to the on-disk artefact sizes and
//!   verifying that the journal recomputes the live request-level
//!   metrics bit-for-bit;
//! * [`resume_run`] — re-opens the artefacts of a previous
//!   [`serve_journal`] run, replays the journal suffix past the latest
//!   checkpoint and runs to completion, checking the resumed report
//!   against a fresh uninterrupted run of the same configuration;
//! * [`fork_ab`] — interrupts a run mid-flight, then forks the same
//!   checkpoint under two eviction policies: identical pasts,
//!   deterministically diverging futures;
//! * [`journal_stats`] — pure offline analysis of journal artefacts, no
//!   scenario required: request counts, hit ratios and latency
//!   percentiles recomputed from the served-event records alone. Reads
//!   the classic `journal.tcj` when present, and otherwise discovers
//!   the per-shard `journal_<s>.tcj` files a sharded run leaves,
//!   merging them in shard order into the same metrics the live merged
//!   report carried.
//!
//! All four share one deterministic study setting (the seed comes from
//! the `RunConfig`), so `serve-journal` followed by `resume` or
//! `journal-stats` on the same `--dir` is a coherent workflow.

use std::path::Path;

use trimcaching_runtime::{
    read_journal, recompute_metrics, Checkpoint, ControlConfig, CostAwareLfu, EvictionPolicy, Lru,
    PersistConfig, RuntimeError, ServeConfig, ServeEngine, ServeMetrics, ServeReport,
};
use trimcaching_scenario::Scenario;

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Simulated run length in seconds.
const DURATION_S: f64 = 600.0;
/// Per-user request rate.
const RATE_HZ: f64 = 0.2;
/// Checkpoint cadence.
const CHECKPOINT_EVERY_S: f64 = 60.0;
/// The A/B fork point: half-way through the run.
const FORK_S: f64 = 300.0;

/// The durable-study scenario: the paper's footprint with capacity
/// tight enough that eviction policy choices diverge.
fn durable_scenario(config: &RunConfig) -> Result<Scenario, SimError> {
    let library = config.build_library(LibraryKind::Special);
    TopologyConfig::paper_defaults()
        .with_users(20)
        .with_capacity_gb(0.25)
        .generate(&library, config.monte_carlo.seed, 0)
}

/// The serving configuration of the study: mobility and the control
/// loop both on, so checkpoints carry every stateful subsystem.
fn durable_serve_config(config: &RunConfig) -> ServeConfig {
    ServeConfig::paper_defaults()
        .with_duration_s(DURATION_S)
        .with_request_rate_hz(RATE_HZ)
        .with_seed(config.monte_carlo.seed)
        .with_mobility_slot_s(5.0)
        .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
}

/// The persistence setting every driver shares.
fn persist_config(dir: &Path) -> PersistConfig {
    PersistConfig::new(dir.to_path_buf()).with_checkpoint_every_s(CHECKPOINT_EVERY_S)
}

/// File size in MB, zero when the file is missing.
fn file_mb(path: &Path) -> f64 {
    std::fs::metadata(path).map_or(0.0, |m| m.len() as f64 / 1e6)
}

/// Whether two metrics objects agree on the request-level view — the
/// part a journal can recompute. Engine-side byte counters are
/// deliberately excluded.
fn request_level_match(a: &ServeMetrics, b: &ServeMetrics) -> bool {
    a.requests == b.requests
        && a.hits == b.hits
        && a.misses_served == b.misses_served
        && a.rejected == b.rejected
        && a.block_hits == b.block_hits
        && a.block_requests == b.block_requests
        && a.windows() == b.windows()
        && a.p50_latency_s().map(f64::to_bits) == b.p50_latency_s().map(f64::to_bits)
        && a.p95_latency_s().map(f64::to_bits) == b.p95_latency_s().map(f64::to_bits)
        && a.p99_latency_s().map(f64::to_bits) == b.p99_latency_s().map(f64::to_bits)
}

/// The standard per-run summary columns.
fn summary_series() -> Vec<String> {
    vec![
        "requests".into(),
        "hit-ratio".into(),
        "p95-latency-ms".into(),
        "backhaul-MB".into(),
        "journal-MB".into(),
        "checkpoint-MB".into(),
    ]
}

/// The standard per-run summary cells.
fn summary_cells(report: &ServeReport, dir: &Path) -> Vec<Measurement> {
    let m = &report.metrics;
    [
        m.requests as f64,
        m.hit_ratio(),
        m.p95_latency_s().unwrap_or(0.0) * 1e3,
        m.backhaul_bytes_moved as f64 / 1e6,
        file_mb(&persist_config(dir).journal_path()),
        file_mb(&persist_config(dir).checkpoint_path()),
    ]
    .into_iter()
    .map(|mean| Measurement { mean, std_dev: 0.0 })
    .collect()
}

/// One fully journaled, checkpointed serving run into `dir`, plus the
/// offline cross-check: the journal must recompute the live run's
/// request-level metrics bit-for-bit (the `offline-match` column is 1).
///
/// # Errors
///
/// Propagates topology, runtime and persistence errors.
pub fn serve_journal(config: &RunConfig, dir: &Path) -> Result<ExperimentTable, SimError> {
    let scenario = durable_scenario(config)?;
    let serve_config = durable_serve_config(config).with_persist(persist_config(dir));
    let report = ServeEngine::new(&scenario, &CostAwareLfu, serve_config)?.run()?;

    let (header, records) =
        read_journal(&persist_config(dir).journal_path()).map_err(RuntimeError::from)?;
    let offline = recompute_metrics(&header, &records);
    let matches = request_level_match(&offline, &report.metrics);

    let mut series = summary_series();
    series.push("offline-match".into());
    let mut table = ExperimentTable::new(
        "serve-journal",
        "Durable serving: journaled + checkpointed run (artefact sizes, offline recomputation)",
        "Run",
        "Metric value",
        series,
    );
    let mut cells = summary_cells(&report, dir);
    cells.push(Measurement {
        mean: f64::from(matches),
        std_dev: 0.0,
    });
    table.push_row(0.0, cells);
    Ok(table)
}

/// Resumes the artefacts a previous [`serve_journal`] run left in
/// `dir`: replays and verifies the journal suffix past the latest
/// checkpoint, runs to the configured end, and checks the resumed
/// report against a fresh uninterrupted run (`identical` column).
///
/// # Errors
///
/// Propagates topology, runtime and persistence errors — including the
/// clear `Persist` errors for missing, torn or mismatched artefacts.
pub fn resume_run(config: &RunConfig, dir: &Path) -> Result<ExperimentTable, SimError> {
    let scenario = durable_scenario(config)?;
    let checkpoint_s = Checkpoint::load(&persist_config(dir).checkpoint_path())
        .map_err(RuntimeError::from)?
        .time_s();
    let resumed = ServeEngine::resume(&scenario, &CostAwareLfu, persist_config(dir))?.run()?;
    // The ground truth: the identical configuration, never interrupted
    // and never persisted.
    let reference =
        ServeEngine::new(&scenario, &CostAwareLfu, durable_serve_config(config))?.run()?;

    let mut series = summary_series();
    series.push("resumed-from-s".into());
    series.push("identical".into());
    let mut table = ExperimentTable::new(
        "serve-resume",
        "Durable serving: resume from the latest checkpoint vs an uninterrupted run",
        "Run",
        "Metric value",
        series,
    );
    let mut cells = summary_cells(&resumed, dir);
    cells.push(Measurement {
        mean: checkpoint_s,
        std_dev: 0.0,
    });
    cells.push(Measurement {
        mean: f64::from(resumed == reference),
        std_dev: 0.0,
    });
    table.push_row(0.0, cells);
    Ok(table)
}

/// Interrupts the study run at its half-way point, then forks the
/// mid-run checkpoint under two eviction policies. Both forks share the
/// identical journaled past; their futures diverge deterministically —
/// the what-if experiment a checkpoint makes free.
///
/// Rows: 0 = the `cost-aware` fork (the policy the past was served
/// under), 1 = the `lru` fork. The `post-fork-hit-ratio` column scores
/// only the windows after the fork point, where the policies differ.
///
/// # Errors
///
/// Propagates topology, runtime and persistence errors.
pub fn fork_ab(config: &RunConfig, dir: &Path) -> Result<ExperimentTable, SimError> {
    let scenario = durable_scenario(config)?;
    let ab_dir = dir.join("fork-ab");
    std::fs::remove_dir_all(&ab_dir).ok();
    let serve_config = durable_serve_config(config).with_persist(persist_config(&ab_dir));
    ServeEngine::new(&scenario, &CostAwareLfu, serve_config)?.run_until(FORK_S)?;

    let checkpoint = persist_config(&ab_dir).checkpoint_path();
    let fork_s = Checkpoint::load(&checkpoint)
        .map_err(RuntimeError::from)?
        .time_s();
    let policies: [&dyn EvictionPolicy; 2] = [&CostAwareLfu, &Lru];
    let mut table = ExperimentTable::new(
        "fork-ab",
        "Durable serving: A/B forks of one mid-run checkpoint \
         (rows: 0 = cost-aware, 1 = lru; identical past, diverging futures)",
        "Fork",
        "Metric value",
        vec![
            "hit-ratio".into(),
            "post-fork-hit-ratio".into(),
            "p95-latency-ms".into(),
            "backhaul-MB".into(),
            "fork-point-s".into(),
        ],
    );
    for (row, policy) in policies.into_iter().enumerate() {
        let report = ServeEngine::fork(&scenario, policy, &checkpoint)?.run()?;
        let m = &report.metrics;
        let (mut hits, mut requests) = (0u64, 0u64);
        for w in m.windows().iter().filter(|w| w.end_s > fork_s) {
            hits += w.hits;
            requests += w.requests;
        }
        table.push_row(
            row as f64,
            [
                m.hit_ratio(),
                if requests == 0 {
                    0.0
                } else {
                    hits as f64 / requests as f64
                },
                m.p95_latency_s().unwrap_or(0.0) * 1e3,
                m.backhaul_bytes_moved as f64 / 1e6,
                fork_s,
            ]
            .into_iter()
            .map(|mean| Measurement { mean, std_dev: 0.0 })
            .collect(),
        );
    }
    Ok(table)
}

/// Reads whatever journal set `dir` holds: the classic `journal.tcj`
/// when present, otherwise the per-shard `journal_<s>.tcj` artefacts a
/// sharded run leaves, discovered ascending from shard 0 and merged in
/// shard order — the same order the live run merged its shard reports,
/// so the recomputed request-level metrics match the merged report
/// bit-for-bit. Returns `(seed, shard count, merged metrics)`; the seed
/// is shard 0's header seed, which is the run seed.
pub(crate) fn read_journal_set(dir: &Path) -> Result<(u64, usize, ServeMetrics), SimError> {
    let persist = persist_config(dir);
    let classic = persist.journal_path();
    if classic.exists() || !persist.journal_shard_path(0).exists() {
        // Classic single-journal run — or nothing at all, in which case
        // the strict read surfaces the usual missing-journal error.
        let (header, records) = read_journal(&classic).map_err(RuntimeError::from)?;
        return Ok((header.seed, 1, recompute_metrics(&header, &records)));
    }
    let (header, records) =
        read_journal(&persist.journal_shard_path(0)).map_err(RuntimeError::from)?;
    let seed = header.seed;
    let mut merged = recompute_metrics(&header, &records);
    let mut shard = 1;
    while persist.journal_shard_path(shard).exists() {
        let (header, records) =
            read_journal(&persist.journal_shard_path(shard)).map_err(RuntimeError::from)?;
        merged.merge_from(&recompute_metrics(&header, &records));
        shard += 1;
    }
    Ok((seed, shard, merged))
}

/// Offline journal analysis: everything the served-event records alone
/// determine, with no scenario and no replay. Works on the journal of a
/// completed *or* interrupted run (strict read — a torn tail is an
/// error, by design), and on the per-shard journal set of a sharded
/// run, whose shards merge back into the live merged report's
/// request-level metrics (the `shards` column reports how many were
/// found).
///
/// # Errors
///
/// Propagates persistence errors (missing journal, torn tail,
/// corruption).
pub fn journal_stats(dir: &Path) -> Result<ExperimentTable, SimError> {
    let (seed, shards, m) = read_journal_set(dir)?;
    let mut table = ExperimentTable::new(
        "journal-stats",
        "Durable serving: request-level metrics recomputed offline from the journal",
        "Run",
        "Metric value",
        vec![
            "seed".into(),
            "requests".into(),
            "hit-ratio".into(),
            "block-hit-ratio".into(),
            "p50-latency-ms".into(),
            "p95-latency-ms".into(),
            "p99-latency-ms".into(),
            "windows".into(),
            "shards".into(),
        ],
    );
    table.push_row(
        0.0,
        [
            seed as f64,
            m.requests as f64,
            m.hit_ratio(),
            m.block_hit_ratio(),
            m.p50_latency_s().unwrap_or(0.0) * 1e3,
            m.p95_latency_s().unwrap_or(0.0) * 1e3,
            m.p99_latency_s().unwrap_or(0.0) * 1e3,
            m.windows().len() as f64,
            shards as f64,
        ]
        .into_iter()
        .map(|mean| Measurement { mean, std_dev: 0.0 })
        .collect(),
    );
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use trimcaching_runtime::ShardedServeEngine;

    fn scratch_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tc-sim-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn the_durable_workflow_holds_together() {
        let config = RunConfig::smoke();
        let dir = scratch_dir();

        // serve-journal: live run matches its own journal bit-for-bit.
        let journaled = serve_journal(&config, &dir).unwrap();
        assert_eq!(journaled.rows.len(), 1);
        let cells = &journaled.rows[0].cells;
        assert!(cells[0].mean > 0.0, "requests were served");
        assert!(cells[4].mean > 0.0, "the journal has bytes");
        assert!(cells[5].mean > 0.0, "the checkpoint has bytes");
        assert_eq!(cells[6].mean, 1.0, "offline recomputation matches");

        // journal-stats agrees with the live summary.
        let stats = journal_stats(&dir).unwrap();
        assert_eq!(stats.rows[0].cells[1].mean, cells[0].mean);
        assert_eq!(stats.rows[0].cells[0].mean, config.monte_carlo.seed as f64);

        // resume: replays the full journal and matches an uninterrupted
        // run exactly.
        let resumed = resume_run(&config, &dir).unwrap();
        let cells = &resumed.rows[0].cells;
        assert_eq!(cells[7].mean, 1.0, "resumed run must be identical");
        assert!(cells[6].mean >= 0.0, "checkpoint time is reported");

        // fork-ab: shared past, diverging futures.
        let forks = fork_ab(&config, &dir).unwrap();
        assert_eq!(forks.rows.len(), 2);
        assert_eq!(forks.rows[0].cells[4].mean, forks.rows[1].cells[4].mean);
        assert!(forks.rows[0].cells[4].mean > 0.0, "fork point is mid-run");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_journals_merge_back_into_the_live_report() {
        let config = RunConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("tc-sim-durable-sharded-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let scenario = durable_scenario(&config).unwrap();
        let serve_config = durable_serve_config(&config).with_persist(persist_config(&dir));
        let live = ShardedServeEngine::new(&scenario, &CostAwareLfu, serve_config, 2)
            .unwrap()
            .with_threads(1)
            .run()
            .unwrap();

        // The per-shard journals, merged in shard order, recompute the
        // live merged report's request-level metrics bit-for-bit.
        let (seed, shards, merged) = read_journal_set(&dir).unwrap();
        assert_eq!(shards, 2, "both shard journals are discovered");
        assert_eq!(seed, live.seed, "shard 0 carries the run seed");
        assert!(
            request_level_match(&merged, &live.metrics),
            "merged shard journals must match the live sharded report"
        );

        // And journal-stats renders the same aggregate, flagging the
        // shard count.
        let stats = journal_stats(&dir).unwrap();
        let cells = &stats.rows[0].cells;
        assert_eq!(cells[0].mean, live.seed as f64);
        assert_eq!(cells[1].mean, live.metrics.requests as f64);
        assert_eq!(cells[2].mean, live.metrics.hit_ratio());
        assert_eq!(cells[8].mean, 2.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_stats_without_artefacts_is_a_clear_error() {
        let dir = std::env::temp_dir().join("tc-sim-durable-missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            journal_stats(&dir).unwrap_err(),
            SimError::Runtime(_)
        ));
    }
}
