//! Fault injection and failover: serving through a scheduled outage
//! storm over the `runtime::faults` subsystem.
//!
//! The study schedules one deterministic outage storm over a quarter of
//! the edge servers mid-run and serves the identical workload twice:
//! once with serve-path failover disabled (requests whose fault-oblivious
//! target is down simply fail) and once with the full fault-tolerance
//! stack on — failover along the eligibility order, abort-and-retry of
//! in-flight fills, failure-masked re-planning and self-healing
//! re-replication when servers come back. Both runs share one seed, so
//! the comparison isolates exactly the failover machinery.
//!
//! Rows: 0 = failover disabled (static), 1 = failover enabled. The
//! enabled row must dominate on availability *and* hit ratio — the
//! acceptance bar the integration tests pin.

use trimcaching_runtime::{
    serve, ControlConfig, FaultConfig, Lru, RecoveryMode, ServeConfig, ServeReport,
};
use trimcaching_scenario::Scenario;

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Simulated run length in seconds.
const DURATION_S: f64 = 600.0;
/// Per-user request rate.
const RATE_HZ: f64 = 0.2;
/// Fraction of the fleet the storm takes down (≥ 10% by design).
const DOWN_FRACTION: f64 = 0.25;
/// When the storm begins.
const STORM_START_S: f64 = 120.0;
/// How long each downed server stays down.
const OUTAGE_S: f64 = 180.0;

/// The fault-study scenario: the paper's footprint with capacity tight
/// enough that losing a quarter of the fleet visibly moves hit ratio.
fn fault_scenario(config: &RunConfig) -> Result<Scenario, SimError> {
    let library = config.build_library(LibraryKind::Special);
    TopologyConfig::paper_defaults()
        .with_users(20)
        .with_capacity_gb(0.25)
        .generate(&library, config.monte_carlo.seed, 0)
}

/// The shared outage storm; only the failover switch differs between
/// the two rows. Partial recovery loses the cold half of each returning
/// cache, so self-healing re-replication has real work to do.
fn storm(scenario: &Scenario, config: &RunConfig, failover: bool) -> Result<FaultConfig, SimError> {
    Ok(FaultConfig::outage_storm(
        scenario.num_servers(),
        DOWN_FRACTION,
        STORM_START_S,
        OUTAGE_S,
        config.monte_carlo.seed,
    )
    .map_err(SimError::from)?
    .with_recovery(RecoveryMode::Partial { keep_fraction: 0.5 })
    .with_failover(failover))
}

/// One serving run under the storm.
fn run_under_storm(
    scenario: &Scenario,
    config: &RunConfig,
    failover: bool,
) -> Result<ServeReport, SimError> {
    let serve_config = ServeConfig::paper_defaults()
        .with_duration_s(DURATION_S)
        .with_request_rate_hz(RATE_HZ)
        .with_seed(config.monte_carlo.seed)
        .with_mobility_slot_s(5.0)
        .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
        .with_faults(storm(scenario, config, failover)?);
    Ok(serve(scenario, &Lru, None, &serve_config)?)
}

/// The per-row summary cells.
fn fault_cells(report: &ServeReport) -> Vec<Measurement> {
    let m = &report.metrics;
    [
        m.availability(),
        m.hit_ratio(),
        m.requests_failed as f64,
        m.requests_failed_over as f64,
        m.fill_retries as f64,
        m.models_lost as f64,
        m.degraded_p95_latency_s().unwrap_or(0.0) * 1e3,
    ]
    .into_iter()
    .map(|mean| Measurement { mean, std_dev: 0.0 })
    .collect()
}

/// The `serve-faults` study: static vs failover-enabled serving through
/// the same deterministic outage storm.
///
/// # Errors
///
/// Propagates topology and runtime errors.
pub fn failover_study(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let scenario = fault_scenario(config)?;
    let mut table = ExperimentTable::new(
        "serve-faults",
        "Fault injection: static vs failover-enabled serving under an \
         outage storm (rows: 0 = failover off, 1 = failover on)",
        "Failover",
        "Metric value",
        vec![
            "availability".into(),
            "hit-ratio".into(),
            "requests-failed".into(),
            "requests-failed-over".into(),
            "fill-retries".into(),
            "models-lost".into(),
            "degraded-p95-ms".into(),
        ],
    );
    for (row, failover) in [false, true].into_iter().enumerate() {
        let report = run_under_storm(&scenario, config, failover)?;
        table.push_row(row as f64, fault_cells(&report));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_dominates_the_static_baseline_under_the_storm() {
        let config = RunConfig::smoke();
        let table = failover_study(&config).unwrap();
        assert_eq!(table.rows.len(), 2);
        let stat = &table.rows[0].cells;
        let over = &table.rows[1].cells;
        assert!(
            stat[2].mean > 0.0,
            "the storm must fail requests without failover"
        );
        assert!(
            over[0].mean > stat[0].mean,
            "failover must raise availability: {} vs {}",
            over[0].mean,
            stat[0].mean
        );
        assert!(
            over[1].mean > stat[1].mean,
            "failover must raise hit ratio: {} vs {}",
            over[1].mean,
            stat[1].mean
        );
        assert!(over[3].mean > 0.0, "some requests failed over");
        assert!(over[5].mean > 0.0, "partial recovery lost models");
    }

    #[test]
    fn the_study_is_deterministic() {
        let config = RunConfig::smoke();
        let a = failover_study(&config).unwrap();
        let b = failover_study(&config).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
