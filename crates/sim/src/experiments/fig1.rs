//! Fig. 1 — inference accuracy vs. number of frozen bottom layers.
//!
//! The paper's Fig. 1 fine-tunes ResNet-50 on two CIFAR-100 superclasses
//! ("transportation" and "animal") while freezing a growing number of
//! bottom layers, showing that accuracy degrades only slightly (≈4.05% and
//! ≈5.2% at a 90% freeze depth). Reproducing the figure verbatim requires
//! GPU fine-tuning; this driver regenerates the curve from the calibrated
//! analytic degradation model documented in DESIGN.md (substitutions).

use trimcaching_modellib::accuracy::FrozenLayerAccuracy;

use crate::report::{ExperimentTable, Measurement};

/// Regenerates the Fig. 1 curve: accuracy vs. frozen bottom layers for the
/// two downstream tasks.
pub fn accuracy_vs_frozen_layers() -> ExperimentTable {
    let transportation = FrozenLayerAccuracy::paper_transportation();
    let animal = FrozenLayerAccuracy::paper_animal();
    let mut table = ExperimentTable::new(
        "fig1",
        "Inference accuracy vs. number of frozen bottom layers (ResNet-50)",
        "Frozen bottom layers",
        "Accuracy",
        vec!["transportation".into(), "animal".into()],
    );
    for frozen in (0..=transportation.total_layers).step_by(5) {
        table.push_row(
            frozen as f64,
            vec![
                Measurement {
                    mean: transportation.accuracy(frozen),
                    std_dev: 0.0,
                },
                Measurement {
                    mean: animal.accuracy(frozen),
                    std_dev: 0.0,
                },
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_the_paper_endpoints() {
        let table = accuracy_vs_frozen_layers();
        assert_eq!(table.series, vec!["transportation", "animal"]);
        assert!(!table.rows.is_empty());
        let first = &table.rows[0];
        let last = table.rows.last().unwrap();
        // Accuracy starts at the full fine-tuning level and only decreases.
        assert!(first.cells[0].mean > last.cells[0].mean);
        // The drop from zero to ~90% frozen stays below ~6%, the paper's
        // qualitative observation motivating parameter sharing.
        let near_90 = table
            .rows
            .iter()
            .find(|r| r.x >= 95.0)
            .expect("a row near the 90% freeze depth exists");
        for c in 0..2 {
            let drop = first.cells[c].mean - near_90.cells[c].mean;
            assert!(drop < 0.06, "drop {drop} too large for series {c}");
            assert!(drop > 0.0);
        }
    }

    #[test]
    fn accuracy_is_monotone_nonincreasing_along_the_curve() {
        let table = accuracy_vs_frozen_layers();
        for c in 0..2 {
            for w in table.rows.windows(2) {
                assert!(w[1].cells[c].mean <= w[0].cells[c].mean + 1e-12);
            }
        }
    }
}
