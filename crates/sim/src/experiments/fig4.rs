//! Fig. 4 — cache hit ratio in the *special case* (small fixed number of
//! shared parameter blocks).
//!
//! Three sweeps over the special-case 30-model library (10 models per
//! backbone at the default [`RunConfig`]), comparing TrimCaching Spec,
//! TrimCaching Gen and Independent Caching:
//!
//! * Fig. 4(a): capacity `Q ∈ {0.5, 0.75, 1, 1.25, 1.5}` GB with `M = 10`;
//! * Fig. 4(b): `M ∈ {6, 8, 10, 12, 14}` servers with `Q = 1` GB;
//! * Fig. 4(c): `K ∈ {10, 20, 30, 40, 50}` users with `Q = 1` GB, `M = 10`.

use trimcaching_placement::{
    IndependentCaching, PlacementAlgorithm, TrimCachingGen, TrimCachingSpec,
};

use super::{sweep, LibraryKind, RunConfig};
use crate::report::ExperimentTable;
use crate::topology::TopologyConfig;
use crate::SimError;

/// The capacity values (GB) swept by Fig. 4(a) / Fig. 5(a).
pub const CAPACITY_POINTS_GB: [f64; 5] = [0.5, 0.75, 1.0, 1.25, 1.5];
/// The edge-server counts swept by Fig. 4(b) / Fig. 5(b).
pub const SERVER_POINTS: [usize; 5] = [6, 8, 10, 12, 14];
/// The user counts swept by Fig. 4(c) / Fig. 5(c).
pub const USER_POINTS: [usize; 5] = [10, 20, 30, 40, 50];

fn algorithms() -> (TrimCachingSpec, TrimCachingGen, IndependentCaching) {
    (
        TrimCachingSpec::new(),
        TrimCachingGen::new(),
        IndependentCaching::new(),
    )
}

/// Fig. 4(a): cache hit ratio vs. edge-server capacity `Q`.
pub fn capacity_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let (spec, gen, ind) = algorithms();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = CAPACITY_POINTS_GB
        .iter()
        .map(|&q| (q, TopologyConfig::paper_defaults().with_capacity_gb(q)))
        .collect();
    sweep(
        "fig4a",
        "Special case: cache hit ratio vs. capacity Q (M = 10, I = 30)",
        "Edge server capacity Q (GB)",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Fig. 4(b): cache hit ratio vs. number of edge servers `M`.
pub fn server_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let (spec, gen, ind) = algorithms();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = SERVER_POINTS
        .iter()
        .map(|&m| (m as f64, TopologyConfig::paper_defaults().with_servers(m)))
        .collect();
    sweep(
        "fig4b",
        "Special case: cache hit ratio vs. number of edge servers M (Q = 1 GB, I = 30)",
        "Number of edge servers M",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Fig. 4(c): cache hit ratio vs. number of users `K`.
pub fn user_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let (spec, gen, ind) = algorithms();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = USER_POINTS
        .iter()
        .map(|&k| (k as f64, TopologyConfig::paper_defaults().with_users(k)))
        .collect();
    sweep(
        "fig4c",
        "Special case: cache hit ratio vs. number of users K (Q = 1 GB, M = 10)",
        "Number of users K",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    fn tiny_config() -> RunConfig {
        RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 3,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 3,
        }
    }

    #[test]
    fn capacity_sweep_produces_the_expected_shape() {
        // A smoke-scale run: one topology, no fading, tiny library. The
        // full-scale reproduction is exercised by the benchmarks/CLI.
        let table = capacity_sweep(&tiny_config()).unwrap();
        assert_eq!(table.id, "fig4a");
        assert_eq!(table.rows.len(), CAPACITY_POINTS_GB.len());
        assert_eq!(
            table.series,
            vec!["trimcaching-spec", "trimcaching-gen", "independent-caching"]
        );
        for row in &table.rows {
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.mean));
            }
        }
        // Sharing-aware placement should never lose to the baseline at any
        // capacity (paper's core qualitative claim).
        let spec = table.series_means("trimcaching-spec").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (s, i) in spec.iter().zip(&ind) {
            assert!(s >= &(i - 1e-9));
        }
    }

    #[test]
    fn sweep_points_match_the_paper() {
        assert_eq!(CAPACITY_POINTS_GB, [0.5, 0.75, 1.0, 1.25, 1.5]);
        assert_eq!(SERVER_POINTS, [6, 8, 10, 12, 14]);
        assert_eq!(USER_POINTS, [10, 20, 30, 40, 50]);
    }
}
