//! Fig. 5 — cache hit ratio in the *general case* (arbitrary parameter
//! sharing).
//!
//! Same three sweeps as Fig. 4 but on the general-case library (two-round
//! fine-tuning per Table I), comparing TrimCaching Gen against Independent
//! Caching — the paper does not run TrimCaching Spec here because its
//! combination enumeration is exponential in the general case.

use trimcaching_placement::{IndependentCaching, PlacementAlgorithm, TrimCachingGen};

use super::fig4::{CAPACITY_POINTS_GB, SERVER_POINTS, USER_POINTS};
use super::{sweep, LibraryKind, RunConfig};
use crate::report::ExperimentTable;
use crate::topology::TopologyConfig;
use crate::SimError;

/// Fig. 5(a): cache hit ratio vs. edge-server capacity `Q`.
pub fn capacity_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::General);
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = CAPACITY_POINTS_GB
        .iter()
        .map(|&q| (q, TopologyConfig::paper_defaults().with_capacity_gb(q)))
        .collect();
    sweep(
        "fig5a",
        "General case: cache hit ratio vs. capacity Q (M = 10, I = 30)",
        "Edge server capacity Q (GB)",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Fig. 5(b): cache hit ratio vs. number of edge servers `M`.
pub fn server_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::General);
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = SERVER_POINTS
        .iter()
        .map(|&m| (m as f64, TopologyConfig::paper_defaults().with_servers(m)))
        .collect();
    sweep(
        "fig5b",
        "General case: cache hit ratio vs. number of edge servers M (Q = 1 GB, I = 30)",
        "Number of edge servers M",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

/// Fig. 5(c): cache hit ratio vs. number of users `K`.
pub fn user_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::General);
    let gen = TrimCachingGen::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = USER_POINTS
        .iter()
        .map(|&k| (k as f64, TopologyConfig::paper_defaults().with_users(k)))
        .collect();
    sweep(
        "fig5c",
        "General case: cache hit ratio vs. number of users K (Q = 1 GB, M = 10)",
        "Number of users K",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    #[test]
    fn general_case_sweep_has_two_series_and_respects_bounds() {
        let config = RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 5,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 5,
        };
        let table = user_sweep(&config).unwrap();
        assert_eq!(table.id, "fig5c");
        assert_eq!(table.series, vec!["trimcaching-gen", "independent-caching"]);
        assert_eq!(table.rows.len(), USER_POINTS.len());
        let gen = table.series_means("trimcaching-gen").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (g, i) in gen.iter().zip(&ind) {
            assert!((0.0..=1.0).contains(g));
            assert!(g >= &(i - 1e-9), "gen {g} below independent {i}");
        }
    }
}
