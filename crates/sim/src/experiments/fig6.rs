//! Fig. 6 — cache hit ratio and running time comparison against the
//! optimal solution.
//!
//! The paper shrinks the deployment to a 400 m square with `M = 2` edge
//! servers and `K = 6` users so that exhaustive search is feasible, sets
//! `ε = 0`, and reports:
//!
//! * Fig. 6(a), special case (`Q = 0.1` GB): TrimCaching Spec matches the
//!   optimal cache hit ratio while being orders of magnitude faster, and
//!   TrimCaching Gen is within ~1.3% of the optimum;
//! * Fig. 6(b), general case (`Q = 0.2` GB): TrimCaching Gen is orders of
//!   magnitude faster than TrimCaching Spec, whose combination enumeration
//!   blows up with arbitrary sharing.

use trimcaching_placement::{
    ExhaustiveSearch, PlacementAlgorithm, TrimCachingGen, TrimCachingSpec,
};

use super::{LibraryKind, RunConfig};
use crate::montecarlo::evaluate_algorithms;
use crate::report::ComparisonTable;
use crate::topology::TopologyConfig;
use crate::SimError;

/// Number of models in the reduced library used by the Fig. 6 experiments
/// (per backbone). The paper reduces the problem so that exhaustive search
/// terminates; 5 models per backbone (15 total) keeps the enumeration exact
/// while leaving it enough work that the orders-of-magnitude running-time
/// separation the paper reports is visible.
pub const FIG6_MODELS_PER_BACKBONE: usize = 5;

/// Per-server capacity (GB) of the Fig. 6(a) comparison. The paper quotes
/// 0.1 GB; with real ResNet sizes only one or two models fit at that point,
/// which trivialises the (maximal-subset) exhaustive search, so the
/// reproduction uses 0.3 GB — small enough that storage still binds, large
/// enough that the optimal search has a non-trivial space to explore.
pub const FIG6A_CAPACITY_GB: f64 = 0.3;

/// Per-server capacity (GB) of the Fig. 6(b) comparison (paper: 0.2 GB).
pub const FIG6B_CAPACITY_GB: f64 = 0.4;

/// Fig. 6(a): special case, TrimCaching Spec / Gen vs. the optimal
/// solution (ε = 0, `Q = 0.1` GB).
pub fn special_case_vs_optimal(config: &RunConfig) -> Result<ComparisonTable, SimError> {
    let mut cfg = *config;
    cfg.models_per_backbone = FIG6_MODELS_PER_BACKBONE.min(config.models_per_backbone.max(1));
    let library = cfg.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_small().with_capacity_gb(FIG6A_CAPACITY_GB);
    let spec = TrimCachingSpec::new().with_epsilon(0.0);
    let gen = TrimCachingGen::new();
    let optimal = ExhaustiveSearch::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&optimal, &spec, &gen];
    let samples = evaluate_algorithms(&library, &topology, &algorithms, &cfg.monte_carlo)?;
    let mut table = ComparisonTable::new(
        "fig6a",
        format!(
            "Special case vs. optimal (400 m, M = 2, K = 6, Q = {FIG6A_CAPACITY_GB} GB, ε = 0)"
        ),
    );
    for s in &samples {
        table.push_row(s.algorithm.clone(), s.hit_ratio(), s.runtime_s());
    }
    Ok(table)
}

/// Fig. 6(b): general case, TrimCaching Spec vs. TrimCaching Gen running
/// time (`Q = 0.2` GB).
pub fn general_case_runtime(config: &RunConfig) -> Result<ComparisonTable, SimError> {
    let mut cfg = *config;
    cfg.models_per_backbone = FIG6_MODELS_PER_BACKBONE.min(config.models_per_backbone.max(1));
    let library = cfg.build_library(LibraryKind::General);
    let topology = TopologyConfig::paper_small().with_capacity_gb(FIG6B_CAPACITY_GB);
    let spec = TrimCachingSpec::new().with_epsilon(0.0);
    let gen = TrimCachingGen::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen];
    let samples = evaluate_algorithms(&library, &topology, &algorithms, &cfg.monte_carlo)?;
    let mut table = ComparisonTable::new(
        "fig6b",
        format!(
            "General case running time (400 m, M = 2, K = 6, Q = {FIG6B_CAPACITY_GB} GB, ε = 0)"
        ),
    );
    for s in &samples {
        table.push_row(s.algorithm.clone(), s.hit_ratio(), s.runtime_s());
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    fn tiny_config() -> RunConfig {
        RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 2,
                fading_realisations: 0,
                seed: 11,
                threads: 1,
            },
            models_per_backbone: 3,
            library_seed: 11,
        }
    }

    #[test]
    fn spec_tracks_the_optimum_and_is_faster() {
        let table = special_case_vs_optimal(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), 3);
        let optimal = table
            .rows
            .iter()
            .find(|r| r.algorithm == "exhaustive-search")
            .unwrap();
        let spec = table
            .rows
            .iter()
            .find(|r| r.algorithm == "trimcaching-spec")
            .unwrap();
        let gen = table
            .rows
            .iter()
            .find(|r| r.algorithm == "trimcaching-gen")
            .unwrap();
        // Theorem 2 guarantee (ε = 0 → factor 1/2), and the empirical
        // observation that Spec is essentially optimal.
        assert!(spec.hit_ratio.mean >= 0.5 * optimal.hit_ratio.mean - 1e-9);
        assert!(spec.hit_ratio.mean >= optimal.hit_ratio.mean - 0.05);
        assert!(gen.hit_ratio.mean <= optimal.hit_ratio.mean + 1e-9);
        // Runtimes are reported for all three algorithms (the orders-of-
        // magnitude speedups only materialise at larger instance sizes,
        // which the fig6 benchmark exercises in release mode).
        assert!(spec.runtime_s.mean > 0.0);
        assert!(gen.runtime_s.mean > 0.0);
        assert!(optimal.runtime_s.mean > 0.0);
    }

    #[test]
    fn gen_is_not_slower_than_spec_in_the_general_case() {
        let table = general_case_runtime(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), 2);
        let spec = &table.rows[0];
        let gen = &table.rows[1];
        assert_eq!(spec.algorithm, "trimcaching-spec");
        assert_eq!(gen.algorithm, "trimcaching-gen");
        // The speedup helper is usable on this table.
        assert!(table
            .speedup("trimcaching-gen", "trimcaching-spec")
            .is_some());
    }
}
