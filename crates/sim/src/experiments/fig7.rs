//! Fig. 7 — robustness of a stale placement under user mobility.
//!
//! `M = 10`, `K = 10`, `Q = 1` GB. A placement is computed once on the
//! initial snapshot with TrimCaching Spec and TrimCaching Gen; users then
//! move for two hours following the pedestrian/bike/vehicle mix of
//! Section VII-E (5-second slots), and the *unchanged* placement is
//! re-evaluated on fresh snapshots at regular intervals. The paper reports
//! only ≈6.4% (Spec) and ≈5.4% (Gen) degradation over the two hours,
//! arguing that model replacement does not need to be re-run frequently.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching_placement::{PlacementAlgorithm, TrimCachingGen, TrimCachingSpec};
use trimcaching_scenario::mobility::{MobilityModel, PAPER_SLOT_SECONDS};
use trimcaching_wireless::geometry::DeploymentArea;

use super::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Total simulated duration in minutes (the paper's Fig. 7 spans 2 hours).
pub const TOTAL_MINUTES: usize = 120;
/// Evaluation interval in minutes.
pub const SAMPLE_INTERVAL_MINUTES: usize = 20;

/// Runs the mobility-robustness study and reports the cache hit ratio of
/// the stale placements over time.
pub fn mobility_robustness(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults()
        .with_users(10)
        .with_capacity_gb(1.0);
    let spec = TrimCachingSpec::new();
    let gen = TrimCachingGen::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&spec, &gen];
    let mut table = ExperimentTable::new(
        "fig7",
        "Cache hit ratio over time under user mobility (M = 10, K = 10, Q = 1 GB)",
        "Time (min)",
        "Cache hit ratio",
        algorithms.iter().map(|a| a.name().to_string()).collect(),
    );

    let num_samples = TOTAL_MINUTES / SAMPLE_INTERVAL_MINUTES;
    let slots_per_sample =
        (SAMPLE_INTERVAL_MINUTES as f64 * 60.0 / PAPER_SLOT_SECONDS).round() as usize;
    // hit[time_sample][algorithm] accumulated over topologies.
    let mut per_time: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); algorithms.len()]; num_samples + 1];

    for topo_index in 0..config.monte_carlo.topologies {
        let scenario = topology.generate(&library, config.monte_carlo.seed, topo_index as u64)?;
        let placements: Vec<_> = algorithms
            .iter()
            .map(|a| a.place(&scenario).map(|o| o.placement))
            .collect::<Result<_, _>>()?;

        let mut fading_rng = StdRng::seed_from_u64(
            config
                .monte_carlo
                .seed
                .wrapping_add(topo_index as u64)
                .wrapping_mul(0x9E37_79B9),
        );
        // t = 0 evaluation on the initial snapshot.
        for (a, placement) in placements.iter().enumerate() {
            let hit = scenario.average_hit_ratio_under_fading(
                placement,
                config.monte_carlo.fading_realisations,
                &mut fading_rng,
            )?;
            per_time[0][a].push(hit);
        }

        // Mobility replay: the placement stays fixed, the snapshot moves.
        let area =
            DeploymentArea::new(topology.area_side_m).map_err(|e| SimError::Scenario(e.into()))?;
        let initial_positions: Vec<_> = scenario.users().iter().map(|u| u.position()).collect();
        let mut mobility_rng = StdRng::seed_from_u64(
            config
                .monte_carlo
                .seed
                .wrapping_mul(31)
                .wrapping_add(topo_index as u64),
        );
        let mut mobility = MobilityModel::paper_mix(&initial_positions, area, &mut mobility_rng);
        // The snapshot evolves in place along the trajectory: each sample
        // applies the accumulated moves through the incremental delta
        // path (bit-identical to a full `with_user_positions` rebuild).
        let mut moved = scenario.clone();
        for per_sample in per_time.iter_mut().skip(1).take(num_samples) {
            let positions = mobility.run_slots(slots_per_sample, &mut mobility_rng);
            moved.update_user_positions(&positions)?;
            for (a, placement) in placements.iter().enumerate() {
                let hit = moved.average_hit_ratio_under_fading(
                    placement,
                    config.monte_carlo.fading_realisations,
                    &mut fading_rng,
                )?;
                per_sample[a].push(hit);
            }
        }
    }

    for (sample, series) in per_time.iter().enumerate() {
        let cells: Vec<Measurement> = series
            .iter()
            .map(|samples| Measurement::from_samples(samples))
            .collect();
        table.push_row((sample * SAMPLE_INTERVAL_MINUTES) as f64, cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    #[test]
    fn mobility_study_reports_all_time_points() {
        let config = RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 13,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 13,
        };
        let table = mobility_robustness(&config).unwrap();
        assert_eq!(table.id, "fig7");
        assert_eq!(
            table.rows.len(),
            TOTAL_MINUTES / SAMPLE_INTERVAL_MINUTES + 1
        );
        assert_eq!(table.rows[0].x, 0.0);
        assert_eq!(table.rows.last().unwrap().x, TOTAL_MINUTES as f64);
        for row in &table.rows {
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.mean));
            }
        }
        // The placement is computed for the initial snapshot, so the hit
        // ratio at t = 0 should be at least as good as the 2-hour average.
        let spec_series = table.series_means("trimcaching-spec").unwrap();
        let avg_later: f64 = spec_series[1..].iter().sum::<f64>() / (spec_series.len() - 1) as f64;
        assert!(spec_series[0] >= avg_later - 0.25);
    }
}
