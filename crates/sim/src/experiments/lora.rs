//! LoRA-marketplace experiment: the introduction's motivating use case as a
//! measurable sweep.
//!
//! The paper motivates parameter sharing with PEFT/LoRA — downstream LLMs
//! freeze >99% of their parameters — but its evaluation only uses the
//! ResNet-derived libraries. This driver quantifies the LoRA story: a
//! catalogue of tenant models that all share one multi-gigabyte foundation
//! body is placed on edge servers of growing storage capacity, and the
//! sharing-aware greedy is compared against Independent Caching. Because a
//! sharing-oblivious cache pays the full foundation per tenant, its hit
//! ratio stays near zero until a server can hold several complete copies,
//! while TrimCaching serves most of the catalogue as soon as one body plus
//! the popular adapters fit.

use trimcaching_modellib::builders::LoraLibraryBuilder;
use trimcaching_placement::{IndependentCaching, PlacementAlgorithm, TrimCachingGenLazy};

use super::{sweep, RunConfig};
use crate::report::ExperimentTable;
use crate::topology::TopologyConfig;
use crate::SimError;

/// Edge storage capacities (GB) swept by [`capacity_sweep`].
pub const CAPACITY_POINTS_GB: [f64; 5] = [7.0, 8.0, 10.0, 13.0, 16.0];

/// Number of tenant adapter models in the marketplace catalogue.
pub const TENANTS: usize = 60;

/// Builds the marketplace library used by this experiment: one ≈6 GB
/// foundation, [`TENANTS`] tenants with ~35 MB adapters and ~5 MB heads.
pub fn marketplace_library(config: &RunConfig) -> trimcaching_modellib::ModelLibrary {
    LoraLibraryBuilder::marketplace()
        .adapters_per_foundation(TENANTS)
        .build(config.library_seed)
}

/// The topology used by this experiment: a dense metro cell cluster where
/// users request multi-gigabyte on-device assistants with a minutes-scale
/// installation budget (a 6 GB body needs 1–2 minutes at the paper's radio
/// parameters, so the paper's sub-second budget would make every request a
/// trivial miss).
fn marketplace_topology(capacity_gb: f64) -> TopologyConfig {
    let mut topology = TopologyConfig::paper_defaults()
        .with_servers(4)
        .with_users(20)
        .with_capacity_gb(capacity_gb);
    topology.area_side_m = 600.0;
    topology.demand.zipf_exponent = 1.1;
    topology.demand.deadline_range_s = (120.0, 240.0);
    topology.demand.inference_range_s = (0.5, 2.0);
    topology
}

/// Cache hit ratio vs. per-server storage for the LoRA marketplace.
pub fn capacity_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = marketplace_library(config);
    let gen = TrimCachingGenLazy::new();
    let ind = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
    let points: Vec<(f64, TopologyConfig)> = CAPACITY_POINTS_GB
        .iter()
        .map(|&q| (q, marketplace_topology(q)))
        .collect();
    sweep(
        "lora-market",
        "LoRA marketplace: hit ratio vs. edge storage (one 6 GB foundation, 60 tenants)",
        "Edge server capacity Q (GB)",
        &library,
        &points,
        &algorithms,
        &config.monte_carlo,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;
    use trimcaching_modellib::LibraryStats;

    fn tiny_config() -> RunConfig {
        RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 3,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 3,
        }
    }

    #[test]
    fn marketplace_library_is_dominated_by_the_shared_foundation() {
        let library = marketplace_library(&tiny_config());
        assert_eq!(library.num_models(), TENANTS);
        let stats = LibraryStats::compute(&library);
        assert!(stats.sharing_savings_ratio > 0.9);
        assert_eq!(stats.max_block_degree, TENANTS);
    }

    #[test]
    fn sharing_aware_placement_dominates_at_every_capacity() {
        let table = capacity_sweep(&tiny_config()).unwrap();
        assert_eq!(table.id, "lora-market");
        assert_eq!(table.rows.len(), CAPACITY_POINTS_GB.len());
        let gen = table.series_means("trimcaching-gen-lazy").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (g, i) in gen.iter().zip(&ind) {
            assert!((0.0..=1.0).contains(g));
            assert!(g >= &(i - 1e-9), "sharing-aware lost: {g} < {i}");
        }
        // At 8 GB the sharing-aware cache already serves a substantial
        // fraction of requests while the oblivious cache fits one tenant.
        assert!(gen[1] > ind[1] + 0.1, "gen {gen:?} vs independent {ind:?}");
    }
}
