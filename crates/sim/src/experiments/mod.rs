//! Experiment drivers regenerating every figure of the paper's evaluation
//! (Section VII), plus ablation studies on the reproduction's design
//! choices.
//!
//! | driver | paper artefact |
//! |--------|----------------|
//! | [`fig1::accuracy_vs_frozen_layers`] | Fig. 1 (accuracy vs frozen layers) |
//! | [`fig4::capacity_sweep`] / [`fig4::server_sweep`] / [`fig4::user_sweep`] | Fig. 4(a)–(c), special case |
//! | [`fig5::capacity_sweep`] / [`fig5::server_sweep`] / [`fig5::user_sweep`] | Fig. 5(a)–(c), general case |
//! | [`fig6::special_case_vs_optimal`] / [`fig6::general_case_runtime`] | Fig. 6(a)–(b) |
//! | [`fig7::mobility_robustness`] | Fig. 7 |
//! | [`ablation`] | ε sweep, sharing-depth sweep, Zipf sweep, scaling, backhaul, deadline, shadowing |
//! | [`replacement`] | online re-placement extension of Fig. 7 |
//! | [`serve`] | online serving via `trimcaching-runtime`: eviction policies and warm starts under live traffic |
//! | [`adapt`] | adaptive serving under demand drift: static vs oracle replan vs the online re-placement controller |
//! | [`city`] | city-scale Poisson deployments on the sparse eligibility representation |
//! | [`durable`] | durable serving via `runtime::persist`: journaled runs, checkpoint resume, A/B forks, offline journal analysis |
//! | [`faults`] | fault injection via `runtime::faults`: static vs failover-enabled serving through a deterministic outage storm |
//! | [`sharded`] | region-sharded serving via `runtime::shard`: thread-count determinism, shard-count throughput sweep, million-user acceptance |

pub mod ablation;
pub mod adapt;
pub mod city;
pub mod durable;
pub mod faults;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod lora;
pub mod replacement;
pub mod serve;
pub mod sharded;

use serde::{Deserialize, Serialize};

use trimcaching_modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching_modellib::ModelLibrary;
use trimcaching_placement::PlacementAlgorithm;

use crate::montecarlo::{evaluate_algorithms, MonteCarloConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Which of the paper's two parameter-sharing libraries an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LibraryKind {
    /// Special case: bottom-layer freezing from three pre-trained backbones.
    Special,
    /// General case: two-round fine-tuning per Table I.
    General,
}

/// Shared configuration of the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Monte-Carlo repetition counts.
    pub monte_carlo: MonteCarloConfig,
    /// Models per backbone family (the paper evaluates Figs. 4–5 with a
    /// 30-model library, i.e. 10 per backbone).
    pub models_per_backbone: usize,
    /// Seed for library construction.
    pub library_seed: u64,
}

impl RunConfig {
    /// Paper-scale repetitions (100 topologies × 1000 fading realisations).
    pub fn paper() -> Self {
        Self {
            monte_carlo: MonteCarloConfig::paper(),
            models_per_backbone: 10,
            library_seed: 2024,
        }
    }

    /// Reduced repetitions preserving the trends; the default for the CLI
    /// and the benchmarks.
    pub fn reduced() -> Self {
        Self {
            monte_carlo: MonteCarloConfig::reduced(),
            models_per_backbone: 10,
            library_seed: 2024,
        }
    }

    /// Minimal configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            monte_carlo: MonteCarloConfig::smoke(),
            models_per_backbone: 2,
            library_seed: 7,
        }
    }

    /// Builds the library of the requested kind at this configuration's
    /// scale.
    pub fn build_library(&self, kind: LibraryKind) -> ModelLibrary {
        match kind {
            LibraryKind::Special => SpecialCaseBuilder::paper_setup()
                .models_per_backbone(self.models_per_backbone)
                .build(self.library_seed),
            LibraryKind::General => GeneralCaseBuilder::paper_setup()
                .classes_per_backbone(self.models_per_backbone)
                .build(self.library_seed),
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::reduced()
    }
}

/// Runs a one-dimensional sweep: for every `(x, topology)` point, evaluates
/// every algorithm over the Monte-Carlo ensemble and records the cache hit
/// ratio.
pub(crate) fn sweep(
    id: &str,
    title: &str,
    x_label: &str,
    library: &ModelLibrary,
    points: &[(f64, TopologyConfig)],
    algorithms: &[&(dyn PlacementAlgorithm + Sync)],
    mc: &MonteCarloConfig,
) -> Result<ExperimentTable, SimError> {
    let series = algorithms.iter().map(|a| a.name().to_string()).collect();
    let mut table = ExperimentTable::new(id, title, x_label, "Cache hit ratio", series);
    for (x, topology) in points {
        let samples = evaluate_algorithms(library, topology, algorithms, mc)?;
        let cells: Vec<Measurement> = samples.iter().map(|s| s.hit_ratio()).collect();
        table.push_row(*x, cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_config_presets() {
        assert_eq!(RunConfig::paper().monte_carlo.topologies, 100);
        assert_eq!(RunConfig::paper().models_per_backbone, 10);
        assert!(RunConfig::smoke().monte_carlo.topologies <= 2);
        assert_eq!(RunConfig::default(), RunConfig::reduced());
    }

    #[test]
    fn libraries_are_built_at_the_requested_scale() {
        let cfg = RunConfig::smoke();
        let special = cfg.build_library(LibraryKind::Special);
        assert_eq!(special.num_models(), 6);
        let general = cfg.build_library(LibraryKind::General);
        assert_eq!(general.num_models(), 6);
        // The general-case library shares strictly more distinct blocks as
        // it scales; at equal scale both are valid parameter-sharing
        // libraries.
        assert!(special.sharing_savings_ratio() > 0.0);
        assert!(general.sharing_savings_ratio() > 0.0);
    }
}
