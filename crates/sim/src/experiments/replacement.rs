//! Online re-placement study (extension of Fig. 7).
//!
//! The paper argues that because a stale placement degrades slowly under
//! mobility (Fig. 7), model replacement "does not need to be re-conducted
//! frequently, thereby saving backbone bandwidth resources". The two
//! drivers in this module quantify both sides of that argument:
//!
//! * [`replacement_study`] — the Fig. 7 time series with a *static*
//!   placement next to a threshold-triggered *adaptive* placement
//!   (re-placement whenever the expected-rate hit ratio drops more than 5%
//!   below its post-placement level);
//! * [`trigger_sweep`] — how the average hit ratio, the number of
//!   re-placements and the migrated bytes trade off as the trigger
//!   threshold is tightened.

use trimcaching_placement::TrimCachingGen;
use trimcaching_wireless::geometry::DeploymentArea;

use super::{LibraryKind, RunConfig};
use crate::replacement::{replay_with_policy, ReplacementPolicy, ReplayConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// Trigger thresholds swept by [`trigger_sweep`].
pub const TRIGGER_POINTS: [f64; 4] = [0.02, 0.05, 0.10, 0.20];

fn replay_config(config: &RunConfig) -> ReplayConfig {
    ReplayConfig {
        total_minutes: 120,
        sample_interval_minutes: 20,
        fading_realisations: config.monte_carlo.fading_realisations.min(100),
    }
}

/// Static vs. adaptive placement under mobility: hit ratio over time.
pub fn replacement_study(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults()
        .with_users(10)
        .with_capacity_gb(1.0);
    let area = DeploymentArea::new(topology.area_side_m)
        .map_err(trimcaching_scenario::ScenarioError::from)?;
    let replay = replay_config(config);
    let policy = ReplacementPolicy::five_percent();
    let algorithm = TrimCachingGen::new();

    let num_samples = replay.total_minutes / replay.sample_interval_minutes + 1;
    let mut static_series: Vec<Vec<f64>> = vec![Vec::new(); num_samples];
    let mut adaptive_series: Vec<Vec<f64>> = vec![Vec::new(); num_samples];
    let mut replacements = 0usize;

    for topo_index in 0..config.monte_carlo.topologies {
        let scenario = topology.generate(&library, config.monte_carlo.seed, topo_index as u64)?;
        let mobility_seed = config
            .monte_carlo
            .seed
            .wrapping_mul(31)
            .wrapping_add(topo_index as u64);
        let fading_seed = config
            .monte_carlo
            .seed
            .wrapping_add(topo_index as u64)
            .wrapping_mul(0x9E37_79B9);
        let static_trace = replay_with_policy(
            &scenario,
            area,
            &algorithm,
            None,
            &replay,
            mobility_seed,
            fading_seed,
        )?;
        let adaptive_trace = replay_with_policy(
            &scenario,
            area,
            &algorithm,
            Some(&policy),
            &replay,
            mobility_seed,
            fading_seed,
        )?;
        replacements += adaptive_trace.replacements;
        for (s, &h) in static_trace.hit_ratios.iter().enumerate() {
            static_series[s].push(h);
        }
        for (s, &h) in adaptive_trace.hit_ratios.iter().enumerate() {
            adaptive_series[s].push(h);
        }
    }

    let mut table = ExperimentTable::new(
        "replacement",
        format!(
            "Static vs. threshold-triggered re-placement under mobility \
             (5% trigger, {} re-placements over {} topologies)",
            replacements, config.monte_carlo.topologies
        ),
        "Time (min)",
        "Cache hit ratio",
        vec![
            "static trimcaching-gen".into(),
            "adaptive trimcaching-gen".into(),
        ],
    );
    for s in 0..num_samples {
        table.push_row(
            (s * replay.sample_interval_minutes) as f64,
            vec![
                Measurement::from_samples(&static_series[s]),
                Measurement::from_samples(&adaptive_series[s]),
            ],
        );
    }
    Ok(table)
}

/// Trade-off between hit ratio, re-placement count and migrated bytes as the
/// trigger threshold varies.
pub fn trigger_sweep(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults()
        .with_users(10)
        .with_capacity_gb(1.0);
    let area = DeploymentArea::new(topology.area_side_m)
        .map_err(trimcaching_scenario::ScenarioError::from)?;
    let replay = replay_config(config);
    let algorithm = TrimCachingGen::new();

    let mut table = ExperimentTable::new(
        "replacement-trigger",
        "Re-placement trigger threshold vs. hit ratio, re-placements and backbone traffic",
        "Trigger threshold (relative hit-ratio drop)",
        "Mean hit ratio / re-placements / migrated GB",
        vec![
            "mean hit ratio".into(),
            "re-placements per replay".into(),
            "migrated GB per replay".into(),
        ],
    );
    for &trigger in &TRIGGER_POINTS {
        let policy = ReplacementPolicy::with_trigger_drop(trigger);
        let mut hits = Vec::new();
        let mut counts = Vec::new();
        let mut migrated = Vec::new();
        for topo_index in 0..config.monte_carlo.topologies {
            let scenario =
                topology.generate(&library, config.monte_carlo.seed, topo_index as u64)?;
            let trace = replay_with_policy(
                &scenario,
                area,
                &algorithm,
                Some(&policy),
                &replay,
                config
                    .monte_carlo
                    .seed
                    .wrapping_mul(31)
                    .wrapping_add(topo_index as u64),
                config
                    .monte_carlo
                    .seed
                    .wrapping_add(topo_index as u64)
                    .wrapping_mul(0x9E37_79B9),
            )?;
            hits.push(trace.mean_hit_ratio());
            counts.push(trace.replacements as f64);
            migrated.push(trace.migrated_bytes as f64 / 1e9);
        }
        table.push_row(
            trigger,
            vec![
                Measurement::from_samples(&hits),
                Measurement::from_samples(&counts),
                Measurement::from_samples(&migrated),
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloConfig;

    fn tiny_config() -> RunConfig {
        RunConfig {
            monte_carlo: MonteCarloConfig {
                topologies: 1,
                fading_realisations: 0,
                seed: 5,
                threads: 1,
            },
            models_per_backbone: 2,
            library_seed: 5,
        }
    }

    #[test]
    fn replacement_study_reports_both_policies_over_time() {
        let table = replacement_study(&tiny_config()).unwrap();
        assert_eq!(table.id, "replacement");
        assert_eq!(table.series.len(), 2);
        assert_eq!(table.rows.len(), 7);
        let static_means = table.series_means("static trimcaching-gen").unwrap();
        let adaptive_means = table.series_means("adaptive trimcaching-gen").unwrap();
        // The adaptive policy can never do worse on average than keeping the
        // stale placement (it only replaces when that improves the
        // expected-rate hit ratio it tracks).
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&adaptive_means) >= avg(&static_means) - 0.05);
        for row in &table.rows {
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.mean));
            }
        }
    }

    #[test]
    fn trigger_sweep_has_one_row_per_threshold() {
        let table = trigger_sweep(&tiny_config()).unwrap();
        assert_eq!(table.rows.len(), TRIGGER_POINTS.len());
        for row in &table.rows {
            assert!((0.0..=1.0).contains(&row.cells[0].mean));
            assert!(row.cells[1].mean >= 0.0);
            assert!(row.cells[2].mean >= 0.0);
        }
        // A tighter trigger can only lead to at least as many re-placements.
        let replacements: Vec<f64> = table.rows.iter().map(|r| r.cells[1].mean).collect();
        for pair in replacements.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9);
        }
    }
}
