//! Online serving experiments: TrimCaching placements under live
//! traffic.
//!
//! The figure experiments score placements by the *expected* hit ratio
//! of Eq. (2); these drivers replay actual request streams through
//! `trimcaching-runtime` and measure what an operator would see:
//!
//! * [`policy_comparison`] — cache hit ratio of the online eviction
//!   policies (LRU, LFU, shared-block-aware cost-greedy) across server
//!   capacities, cold-started, averaged over random topologies;
//! * [`warm_start_trace`] — the windowed hit-ratio time series of one
//!   topology, comparing a cold start against a warm start from the
//!   TrimCaching Gen placement, under user mobility;
//! * [`block_fill_comparison`] — backhaul bytes moved by cache fills
//!   under whole-model versus block-granular transfers: the wire-side
//!   payoff of parameter sharing the storage-side hit ratio cannot show.

use trimcaching_placement::{PlacementAlgorithm, TrimCachingGen};
use trimcaching_runtime::{
    serve, CostAwareLfu, EvictionPolicy, FillGranularity, Lfu, Lru, ServeConfig,
};

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::TopologyConfig;
use crate::SimError;

/// The three policies every serving experiment compares.
fn policies() -> [&'static dyn EvictionPolicy; 3] {
    [&Lru, &Lfu, &CostAwareLfu]
}

/// The serving configuration the experiments use: ten simulated minutes
/// of Poisson traffic per topology at the `RunConfig`'s seed.
fn serve_config(config: &RunConfig) -> ServeConfig {
    ServeConfig::paper_defaults().with_seed(config.monte_carlo.seed)
}

/// Final cache hit ratio of each online policy versus edge-server
/// capacity, cold-started, averaged over the Monte-Carlo topology
/// ensemble.
///
/// # Errors
///
/// Propagates topology and runtime errors.
pub fn policy_comparison(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    if config.monte_carlo.topologies == 0 {
        return Err(SimError::InvalidConfig {
            reason: "at least one topology is required".into(),
        });
    }
    let library = config.build_library(LibraryKind::Special);
    let policies = policies();
    let mut table = ExperimentTable::new(
        "serve",
        "Online serving: eviction policies under live traffic (cold start)",
        "Edge server capacity Q (GB)",
        "Cache hit ratio",
        policies.iter().map(|p| p.name().to_string()).collect(),
    );
    let serve_config = serve_config(config);
    for capacity_gb in [0.25, 0.5, 1.0] {
        let topology = TopologyConfig::paper_defaults().with_capacity_gb(capacity_gb);
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for index in 0..config.monte_carlo.topologies {
            let scenario = topology.generate(&library, config.monte_carlo.seed, index as u64)?;
            for (p, policy) in policies.iter().enumerate() {
                let report = serve(&scenario, *policy, None, &serve_config)?;
                samples[p].push(report.metrics.hit_ratio());
            }
        }
        table.push_row(
            capacity_gb,
            samples
                .iter()
                .map(|s| Measurement::from_samples(s))
                .collect(),
        );
    }
    Ok(table)
}

/// Windowed hit-ratio trace of one topology under mobility: the
/// shared-block-aware policy cold-started versus warm-started from the
/// TrimCaching Gen placement.
///
/// # Errors
///
/// Propagates topology, placement and runtime errors.
pub fn warm_start_trace(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let topology = TopologyConfig::paper_defaults();
    let scenario = topology.generate(&library, config.monte_carlo.seed, 0)?;
    let placement = TrimCachingGen::new().place(&scenario)?.placement;
    let serve_config = serve_config(config)
        .with_mobility_slot_s(trimcaching_scenario::mobility::PAPER_SLOT_SECONDS);

    let cold = serve(&scenario, &CostAwareLfu, None, &serve_config)?;
    let warm = serve(&scenario, &CostAwareLfu, Some(&placement), &serve_config)?;

    let mut table = ExperimentTable::new(
        "serve-trace",
        "Online serving: windowed hit ratio, cold vs TrimCaching-Gen warm start",
        "Time (s)",
        "Windowed cache hit ratio",
        vec!["cost-aware (cold)".into(), "cost-aware (warm)".into()],
    );
    for (c, w) in cold.metrics.windows().iter().zip(warm.metrics.windows()) {
        table.push_row(
            c.end_s,
            vec![
                Measurement {
                    mean: c.hit_ratio(),
                    std_dev: 0.0,
                },
                Measurement {
                    mean: w.hit_ratio(),
                    std_dev: 0.0,
                },
            ],
        );
    }
    Ok(table)
}

/// Backhaul bytes moved (MB) by ten minutes of live traffic under the
/// cost-aware policy, versus edge-server capacity: whole-model fills
/// (sharing invisible on the wire), block-granular fills, and
/// block-granular fills with congestion feedback disabled (same bytes,
/// uncontended transfer times — isolates the two effects). Averaged
/// over the Monte-Carlo topology ensemble.
///
/// # Errors
///
/// Propagates topology and runtime errors.
pub fn block_fill_comparison(config: &RunConfig) -> Result<ExperimentTable, SimError> {
    if config.monte_carlo.topologies == 0 {
        return Err(SimError::InvalidConfig {
            reason: "at least one topology is required".into(),
        });
    }
    let library = config.build_library(LibraryKind::Special);
    let variants: [(&str, FillGranularity, bool); 3] = [
        ("whole-model", FillGranularity::WholeModel, true),
        ("block", FillGranularity::Block, true),
        ("block (no congestion)", FillGranularity::Block, false),
    ];
    let mut table = ExperimentTable::new(
        "serve-blocks",
        "Online serving: backhaul MB moved, whole-model vs block-granular fills",
        "Edge server capacity Q (GB)",
        "Backhaul bytes moved (MB)",
        variants
            .iter()
            .map(|(name, _, _)| name.to_string())
            .collect(),
    );
    let base_config = serve_config(config);
    for capacity_gb in [0.25, 0.5, 1.0] {
        let topology = TopologyConfig::paper_defaults().with_capacity_gb(capacity_gb);
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
        for index in 0..config.monte_carlo.topologies {
            let scenario = topology.generate(&library, config.monte_carlo.seed, index as u64)?;
            for (v, &(_, granularity, congestion)) in variants.iter().enumerate() {
                let serve_config = base_config
                    .clone()
                    .with_granularity(granularity)
                    .with_congestion_aware(congestion);
                let report = serve(&scenario, &CostAwareLfu, None, &serve_config)?;
                samples[v].push(report.metrics.backhaul_bytes_moved as f64 / 1e6);
            }
        }
        table.push_row(
            capacity_gb,
            samples
                .iter()
                .map(|s| Measurement::from_samples(s))
                .collect(),
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_topologies_are_rejected() {
        let mut config = RunConfig::smoke();
        config.monte_carlo.topologies = 0;
        assert!(policy_comparison(&config).is_err());
        assert!(block_fill_comparison(&config).is_err());
    }

    #[test]
    fn block_fills_move_no_more_than_whole_model_fills() {
        let config = RunConfig::smoke();
        let table = block_fill_comparison(&config).unwrap();
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            let whole = row.cells[0].mean;
            let block = row.cells[1].mean;
            let block_uncontended = row.cells[2].mean;
            assert!(whole > 0.0, "misses must move bytes");
            assert!(
                block <= whole,
                "block fills ({block:.1} MB) must not exceed whole-model fills ({whole:.1} MB)"
            );
            // Congestion changes transfer *times*, not the per-fill
            // byte accounting; totals may drift slightly because hit
            // patterns shift with availability timing.
            assert!(block_uncontended > 0.0);
        }
    }

    #[test]
    fn policy_comparison_produces_full_rows() {
        let config = RunConfig::smoke();
        let table = policy_comparison(&config).unwrap();
        assert_eq!(table.series, vec!["lru", "lfu", "cost-aware"]);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.mean));
            }
        }
    }

    #[test]
    fn warm_start_never_loses_to_cold_start_at_the_first_window() {
        let config = RunConfig::smoke();
        let table = warm_start_trace(&config).unwrap();
        assert!(!table.rows.is_empty());
        let first = &table.rows[0];
        // The warm-started cache begins with the Gen placement already
        // provisioned; the cold cache starts empty.
        assert!(first.cells[1].mean >= first.cells[0].mean);
    }
}
