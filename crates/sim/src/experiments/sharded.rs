//! Region-sharded serving: thread-count determinism and throughput
//! scaling of [`trimcaching_runtime::ShardedServeEngine`].
//!
//! Two studies back the sharded engine's contract:
//!
//! * [`sharded_scaling_study`] sweeps the shard count `R` on a
//!   district-scale city and, for every `R`, runs the *same* seed once
//!   on a single worker thread and once on the requested pool. The
//!   merged reports must be identical — the `identical` series is a
//!   hard check, not a statistic — and the wall-clock series record the
//!   serving throughput and its per-core normalisation.
//! * [`sharded_xl_study`] is the million-user acceptance path: a
//!   15 km × 15 km city with `10⁶` users built on clustered demand
//!   (256 Zipf classes, so the demand matrices stay at `256 × I`
//!   instead of `10⁶ × I`) and sparse eligibility, served sharded and
//!   compared across worker-thread counts byte for byte.
//!
//! Throughput speedup is hardware-dependent (a single-core host runs
//! the pool sequentially); the determinism columns are not — they must
//! hold on any machine.

use std::time::Instant;

use trimcaching_runtime::{CostAwareLfu, ServeConfig, ShardedServeEngine};

use crate::experiments::{LibraryKind, RunConfig};
use crate::report::{ExperimentTable, Measurement};
use crate::topology::CityScaleConfig;
use crate::SimError;

/// The district the scaling sweep serves: 2 km × 2 km, 4 000 users on
/// 64 clustered demand classes, a mostly idle population.
fn district() -> CityScaleConfig {
    let mut city = CityScaleConfig::district()
        .with_users(4_000)
        .with_demand_classes(64);
    city.area_side_m = 2_000.0;
    city.capacity_gb = 0.4;
    city
}

/// The serving configuration of both studies: mobility on (so shards
/// actually merge and migrate at slot boundaries) and a horizon long
/// enough for a stable requests-per-second figure.
fn serve_config(config: &RunConfig, duration_s: f64) -> ServeConfig {
    ServeConfig::paper_defaults()
        .with_seed(config.monte_carlo.seed)
        .with_duration_s(duration_s)
        .with_request_rate_hz(0.05)
        .with_mobility_slot_s(10.0)
}

/// The worker count a pool of `threads` actually uses for `shards`
/// shards (`0` = all available cores).
fn effective_workers(threads: usize, shards: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = if threads == 0 { available } else { threads };
    pool.min(shards).max(1)
}

/// Shard-count sweep `R ∈ {1, 2, …, max_shards}` (powers of two):
/// serves the same district at every `R` on one worker thread and on a
/// `threads`-wide pool, requires the merged reports to be identical,
/// and reports throughput, per-core throughput and the hit ratio.
///
/// # Errors
///
/// Returns a [`SimError`] for invalid configurations, engine failures,
/// or — the point of the study — a trace that differs between worker
/// pool sizes.
pub fn sharded_scaling_study(
    config: &RunConfig,
    max_shards: usize,
    threads: usize,
) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let scenario = district().generate(&library, config.monte_carlo.seed, 0)?;
    let serve_cfg = serve_config(config, 120.0);
    let mut table = ExperimentTable::new(
        "sharded-scaling",
        "Region-sharded serving: determinism across thread counts and throughput vs shards",
        "Shards R",
        "Requests/s (throughput series) / ratio (hit-ratio, identical)",
        vec![
            "throughput-req-s".into(),
            "throughput-req-s-core".into(),
            "hit-ratio".into(),
            "identical-across-threads".into(),
        ],
    );
    let mut shard_counts = vec![1usize];
    while let Some(&last) = shard_counts.last() {
        if last * 2 > max_shards.max(1) {
            break;
        }
        shard_counts.push(last * 2);
    }
    for &shards in &shard_counts {
        let serial = ShardedServeEngine::new(&scenario, &CostAwareLfu, serve_cfg.clone(), shards)?
            .with_threads(1)
            .run()?;
        // audit:allow(wall-clock): times the pooled run for the throughput column; reporting only, never simulated time
        let started = Instant::now();
        let pooled = ShardedServeEngine::new(&scenario, &CostAwareLfu, serve_cfg.clone(), shards)?
            .with_threads(threads)
            .run()?;
        let wall_s = started.elapsed().as_secs_f64().max(1e-9);
        if serial != pooled {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "sharded run at R={shards} differs between 1 and {threads} worker threads"
                ),
            });
        }
        let throughput = pooled.metrics.requests as f64 / wall_s;
        let workers = effective_workers(threads, shards) as f64;
        table.push_row(
            shards as f64,
            vec![
                Measurement::from_samples(&[throughput]),
                Measurement::from_samples(&[throughput / workers]),
                Measurement::from_samples(&[pooled.metrics.hit_ratio()]),
                Measurement::from_samples(&[1.0]),
            ],
        );
    }
    Ok(table)
}

/// Million-user acceptance run: a full-size city (`10⁶` users, ≈ 1 000
/// Poisson servers, clustered demand, sparse eligibility) served with
/// 8 region shards for a short horizon, once on 1 worker thread and
/// once on `threads`. The reports must be byte-identical; the table
/// records the scale, the throughput and the check.
///
/// # Errors
///
/// Returns a [`SimError`] on engine failures or a thread-count
/// determinism violation.
pub fn sharded_xl_study(config: &RunConfig, threads: usize) -> Result<ExperimentTable, SimError> {
    let library = config.build_library(LibraryKind::Special);
    let city = CityScaleConfig::city()
        .with_users(1_000_000)
        .with_demand_classes(256);
    let scenario = city.generate(&library, config.monte_carlo.seed, 0)?;
    let serve_cfg = serve_config(config, 30.0);
    let shards = 8usize;
    let mut table = ExperimentTable::new(
        "sharded-xl",
        "Million-user sharded serving: byte-identity across worker-thread counts",
        "Users",
        "Count (users, servers, requests) / req/s (throughput) / ratio (identical)",
        vec![
            "servers".into(),
            "requests".into(),
            "throughput-req-s".into(),
            "identical-across-threads".into(),
        ],
    );
    let serial = ShardedServeEngine::new(&scenario, &CostAwareLfu, serve_cfg.clone(), shards)?
        .with_threads(1)
        .run()?;
    // audit:allow(wall-clock): times the pooled run for the throughput column; reporting only, never simulated time
    let started = Instant::now();
    let pooled = ShardedServeEngine::new(&scenario, &CostAwareLfu, serve_cfg, shards)?
        .with_threads(threads)
        .run()?;
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);
    if serial != pooled {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "million-user sharded run differs between 1 and {threads} worker threads"
            ),
        });
    }
    table.push_row(
        scenario.num_users() as f64,
        vec![
            Measurement::from_samples(&[scenario.num_servers() as f64]),
            Measurement::from_samples(&[pooled.metrics.requests as f64]),
            Measurement::from_samples(&[pooled.metrics.requests as f64 / wall_s]),
            Measurement::from_samples(&[1.0]),
        ],
    );
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_study_is_deterministic_and_covers_the_sweep() {
        // Smoke-sized: tiny library, short horizon via a trimmed config.
        let config = RunConfig::smoke();
        let table = sharded_scaling_study(&config, 4, 2).unwrap();
        assert_eq!(table.rows.len(), 3, "R = 1, 2, 4");
        let identical = table.series_means("identical-across-threads").unwrap();
        assert!(identical.iter().all(|&v| v == 1.0));
        let throughput = table.series_means("throughput-req-s").unwrap();
        assert!(throughput.iter().all(|&v| v > 0.0));
    }
}
