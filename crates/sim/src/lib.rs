//! Simulation harness reproducing the TrimCaching evaluation.
//!
//! This crate turns the substrates (`trimcaching-wireless`,
//! `trimcaching-modellib`, `trimcaching-scenario`) and the algorithms
//! (`trimcaching-placement`) into the experiments of Section VII of the
//! paper:
//!
//! * [`topology`] — random network topologies per Section VII-A;
//! * [`montecarlo`] — averaging over topologies and Rayleigh fading
//!   realisations, in parallel;
//! * [`experiments`] — one driver per figure (Figs. 1, 4, 5, 6, 7) plus
//!   ablation studies;
//! * [`report`] — tables with Markdown/CSV rendering, as printed by the
//!   `trimcaching-sim` binary and recorded in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```no_run
//! use trimcaching_sim::experiments::{fig4, RunConfig};
//!
//! let config = RunConfig::reduced();
//! let table = fig4::capacity_sweep(&config).expect("experiment runs");
//! println!("{}", table.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod montecarlo;
pub mod replacement;
pub mod report;
pub mod sweep;
pub mod topology;

pub use error::SimError;
pub use montecarlo::{evaluate_algorithms, AlgorithmSamples, MonteCarloConfig};
pub use replacement::{replay_with_policy, ReplacementPolicy, ReplacementTrace, ReplayConfig};
pub use report::{ComparisonTable, ExperimentTable, Measurement};
pub use sweep::{run_sweep, Cell, PolicyKind, SweepReport, SweepSpec, WorkloadFamily};
pub use topology::{CityScaleConfig, TopologyConfig};
