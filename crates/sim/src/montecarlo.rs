//! Monte-Carlo evaluation: topologies × Rayleigh fading realisations.
//!
//! The paper averages every reported point over 100 network topologies and,
//! for each topology, over more than 10³ Rayleigh channel realisations
//! (placements are decided on expected channel gains, performance is then
//! measured under fading). [`MonteCarloConfig`] captures those repetition
//! counts, and [`evaluate_algorithms`] runs a set of placement algorithms
//! over the topology ensemble in parallel worker threads.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use trimcaching_modellib::ModelLibrary;
use trimcaching_placement::PlacementAlgorithm;

use crate::report::Measurement;
use crate::topology::TopologyConfig;
use crate::SimError;

/// Repetition counts for the Monte-Carlo evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of random network topologies (the paper uses 100).
    pub topologies: usize,
    /// Number of Rayleigh fading realisations per topology (the paper uses
    /// over 10³). `0` evaluates on expected rates only.
    pub fading_realisations: usize,
    /// Base seed; every topology derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads (0 = one per available CPU).
    pub threads: usize,
}

impl MonteCarloConfig {
    /// The paper's repetition counts (100 topologies × 1000 realisations).
    pub fn paper() -> Self {
        Self {
            topologies: 100,
            fading_realisations: 1000,
            seed: 2024,
            threads: 0,
        }
    }

    /// A reduced configuration that preserves the trends while keeping the
    /// full figure sweep runnable in minutes on a laptop.
    pub fn reduced() -> Self {
        Self {
            topologies: 15,
            fading_realisations: 100,
            seed: 2024,
            threads: 0,
        }
    }

    /// A minimal configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            topologies: 2,
            fading_realisations: 5,
            seed: 7,
            threads: 1,
        }
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self::reduced()
    }
}

/// Per-algorithm samples collected over the topology ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AlgorithmSamples {
    /// Algorithm name.
    pub algorithm: String,
    /// One fading-averaged cache hit ratio per topology.
    pub hit_ratios: Vec<f64>,
    /// One optimisation wall-clock time (seconds) per topology.
    pub runtimes_s: Vec<f64>,
    /// One work counter (candidate evaluations) per topology.
    pub evaluations: Vec<u64>,
}

impl AlgorithmSamples {
    /// Mean ± std of the cache hit ratio.
    pub fn hit_ratio(&self) -> Measurement {
        Measurement::from_samples(&self.hit_ratios)
    }

    /// Mean ± std of the running time in seconds.
    pub fn runtime_s(&self) -> Measurement {
        Measurement::from_samples(&self.runtimes_s)
    }
}

/// Runs every algorithm on `mc.topologies` random topologies drawn from
/// `topology`, evaluating each resulting placement over
/// `mc.fading_realisations` Rayleigh realisations.
///
/// The returned vector is indexed like `algorithms`.
///
/// # Errors
///
/// Returns the first error produced by topology generation or by an
/// algorithm. Algorithms that refuse an instance
/// (`PlacementError::InstanceTooLarge`) propagate that refusal.
pub fn evaluate_algorithms(
    library: &ModelLibrary,
    topology: &TopologyConfig,
    algorithms: &[&(dyn PlacementAlgorithm + Sync)],
    mc: &MonteCarloConfig,
) -> Result<Vec<AlgorithmSamples>, SimError> {
    if mc.topologies == 0 {
        return Err(SimError::InvalidConfig {
            reason: "at least one topology is required".into(),
        });
    }
    if algorithms.is_empty() {
        return Err(SimError::InvalidConfig {
            reason: "at least one algorithm is required".into(),
        });
    }

    // Per topology: one (hit ratio, runtime, evaluations) triple per
    // algorithm, filled in by whichever worker claims the index.
    type TopologySamples = Vec<(f64, f64, u64)>;
    let results: Mutex<Vec<Option<TopologySamples>>> = Mutex::new(vec![None; mc.topologies]);
    let error: Mutex<Option<SimError>> = Mutex::new(None);
    let next_index = std::sync::atomic::AtomicUsize::new(0);
    let workers = mc.worker_threads().min(mc.topologies).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if index >= mc.topologies {
                    break;
                }
                if error.lock().is_some() {
                    break;
                }
                let outcome = (|| -> Result<Vec<(f64, f64, u64)>, SimError> {
                    let scenario = topology.generate(library, mc.seed, index as u64)?;
                    let mut per_algorithm = Vec::with_capacity(algorithms.len());
                    for algorithm in algorithms {
                        let result = algorithm.place(&scenario)?;
                        let mut rng = StdRng::seed_from_u64(
                            mc.seed
                                .wrapping_add(index as u64)
                                .wrapping_mul(0xA24B_AED4_963E_E407),
                        );
                        let hit = scenario.average_hit_ratio_under_fading(
                            &result.placement,
                            mc.fading_realisations,
                            &mut rng,
                        )?;
                        per_algorithm.push((hit, result.runtime.as_secs_f64(), result.evaluations));
                    }
                    Ok(per_algorithm)
                })();
                match outcome {
                    Ok(v) => results.lock()[index] = Some(v),
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }

    let per_topology = results.into_inner();
    let mut samples: Vec<AlgorithmSamples> = algorithms
        .iter()
        .map(|a| AlgorithmSamples {
            algorithm: a.name().to_string(),
            ..Default::default()
        })
        .collect();
    for topo in per_topology.into_iter().flatten() {
        for (a, (hit, runtime, evals)) in topo.into_iter().enumerate() {
            samples[a].hit_ratios.push(hit);
            samples[a].runtimes_s.push(runtime);
            samples[a].evaluations.push(evals);
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimcaching_modellib::builders::SpecialCaseBuilder;
    use trimcaching_placement::{IndependentCaching, TrimCachingGen};

    fn library() -> ModelLibrary {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(3)
            .build(1)
    }

    #[test]
    fn evaluation_produces_one_sample_per_topology() {
        let lib = library();
        let topology = TopologyConfig::paper_defaults()
            .with_servers(3)
            .with_users(8);
        let gen = TrimCachingGen::new();
        let ind = IndependentCaching::new();
        let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &ind];
        let mc = MonteCarloConfig::smoke();
        let samples = evaluate_algorithms(&lib, &topology, &algorithms, &mc).unwrap();
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert_eq!(s.hit_ratios.len(), mc.topologies);
            assert_eq!(s.runtimes_s.len(), mc.topologies);
            assert_eq!(s.evaluations.len(), mc.topologies);
            let hit = s.hit_ratio();
            assert!((0.0..=1.0).contains(&hit.mean));
            assert!(s.runtime_s().mean >= 0.0);
        }
        assert_eq!(samples[0].algorithm, "trimcaching-gen");
        assert_eq!(samples[1].algorithm, "independent-caching");
        // Sharing-aware greedy should not lose to the baseline on average.
        assert!(samples[0].hit_ratio().mean >= samples[1].hit_ratio().mean - 1e-9);
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let lib = library();
        let topology = TopologyConfig::paper_defaults()
            .with_servers(2)
            .with_users(6);
        let gen = TrimCachingGen::new();
        let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen];
        let mc = MonteCarloConfig {
            topologies: 3,
            fading_realisations: 10,
            seed: 99,
            threads: 2,
        };
        let a = evaluate_algorithms(&lib, &topology, &algorithms, &mc).unwrap();
        let b = evaluate_algorithms(&lib, &topology, &algorithms, &mc).unwrap();
        // Wall-clock runtimes naturally differ between runs; everything
        // derived from the random streams must be identical.
        assert_eq!(a[0].hit_ratios, b[0].hit_ratios);
        assert_eq!(a[0].evaluations, b[0].evaluations);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let lib = library();
        let topology = TopologyConfig::paper_defaults();
        let gen = TrimCachingGen::new();
        let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen];
        let mc = MonteCarloConfig {
            topologies: 0,
            ..MonteCarloConfig::smoke()
        };
        assert!(evaluate_algorithms(&lib, &topology, &algorithms, &mc).is_err());
        let empty: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![];
        assert!(evaluate_algorithms(&lib, &topology, &empty, &MonteCarloConfig::smoke()).is_err());
    }

    #[test]
    fn presets_have_expected_scale() {
        assert_eq!(MonteCarloConfig::paper().topologies, 100);
        assert_eq!(MonteCarloConfig::paper().fading_realisations, 1000);
        assert!(MonteCarloConfig::reduced().topologies < 100);
        assert_eq!(MonteCarloConfig::default(), MonteCarloConfig::reduced());
        assert!(MonteCarloConfig::smoke().worker_threads() == 1);
        let auto = MonteCarloConfig {
            threads: 0,
            ..MonteCarloConfig::smoke()
        };
        assert!(auto.worker_threads() >= 1);
    }
}
