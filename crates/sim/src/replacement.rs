//! Online model re-placement under user mobility.
//!
//! The paper solves the placement on a snapshot of user locations and notes
//! (Section IV-A) that in practice the operator would *"re-initiate model
//! placement when the performance degrades to a certain threshold"*, while
//! Fig. 7 shows that a stale placement only degrades slowly. This module
//! implements exactly that operating loop so the trade-off can be
//! quantified:
//!
//! * [`ReplacementPolicy`] — re-run the placement algorithm whenever the
//!   expected-rate hit ratio of the current placement on the fresh snapshot
//!   falls below a configurable fraction of the hit ratio it achieved right
//!   after it was last computed;
//! * [`replay_with_policy`] — a time-slotted mobility replay producing a
//!   [`ReplacementTrace`]: the hit ratio over time, how many re-placements
//!   were triggered, and how many bytes had to be migrated over the
//!   backhaul to realise them (the cost the paper argues should stay low).
//!
//! The `replacement` experiment and the `online_replacement` example are
//! built on top of this module.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use trimcaching_placement::PlacementAlgorithm;
use trimcaching_scenario::mobility::{MobilityModel, PAPER_SLOT_SECONDS};
use trimcaching_scenario::{BlockPlacement, Placement, Scenario, ServerId};
use trimcaching_wireless::geometry::DeploymentArea;

use crate::SimError;

/// Threshold-triggered re-placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplacementPolicy {
    /// Relative hit-ratio drop that triggers a re-placement: the placement
    /// is recomputed when the current expected-rate hit ratio falls below
    /// `(1 − trigger_drop)` times the hit ratio right after the last
    /// placement. Must lie in `(0, 1]`.
    pub trigger_drop: f64,
    /// Minimum number of evaluation samples between two re-placements
    /// (rate-limits the backbone traffic).
    pub min_samples_between: usize,
}

impl ReplacementPolicy {
    /// A 5% degradation trigger with no rate limiting — the natural reading
    /// of the paper's "certain threshold" remark.
    pub fn five_percent() -> Self {
        Self {
            trigger_drop: 0.05,
            min_samples_between: 1,
        }
    }

    /// Creates a policy with the given relative drop trigger.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_drop` is not in `(0, 1]`.
    pub fn with_trigger_drop(trigger_drop: f64) -> Self {
        assert!(
            trigger_drop > 0.0 && trigger_drop <= 1.0,
            "trigger drop must lie in (0, 1], got {trigger_drop}"
        );
        Self {
            trigger_drop,
            min_samples_between: 1,
        }
    }
}

impl Default for ReplacementPolicy {
    fn default() -> Self {
        Self::five_percent()
    }
}

/// Timing configuration of a mobility replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Total simulated duration in minutes (the paper's Fig. 7 spans 120).
    pub total_minutes: usize,
    /// Interval between hit-ratio evaluations in minutes.
    pub sample_interval_minutes: usize,
    /// Rayleigh realisations per evaluation (0 = expected rates only).
    pub fading_realisations: usize,
}

impl ReplayConfig {
    /// The Fig. 7 timing: two hours, sampled every 20 minutes.
    pub fn paper() -> Self {
        Self {
            total_minutes: 120,
            sample_interval_minutes: 20,
            fading_realisations: 50,
        }
    }

    /// A fast configuration for tests.
    pub fn smoke() -> Self {
        Self {
            total_minutes: 40,
            sample_interval_minutes: 20,
            fading_realisations: 0,
        }
    }

    fn num_samples(&self) -> usize {
        self.total_minutes / self.sample_interval_minutes
    }

    fn slots_per_sample(&self) -> usize {
        ((self.sample_interval_minutes as f64) * 60.0 / PAPER_SLOT_SECONDS).round() as usize
    }
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Result of one mobility replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplacementTrace {
    /// Evaluation instants in minutes (starting at 0).
    pub times_min: Vec<f64>,
    /// Fading-averaged hit ratio at each instant (after any re-placement
    /// performed at that instant).
    pub hit_ratios: Vec<f64>,
    /// Number of re-placements the policy triggered.
    pub replacements: usize,
    /// Bytes that had to be pushed over the backbone to realise the
    /// re-placements: per server, the sizes of blocks newly stored compared
    /// to the previous placement.
    pub migrated_bytes: u64,
}

impl ReplacementTrace {
    /// Mean hit ratio over the whole replay.
    pub fn mean_hit_ratio(&self) -> f64 {
        if self.hit_ratios.is_empty() {
            return 0.0;
        }
        self.hit_ratios.iter().sum::<f64>() / self.hit_ratios.len() as f64
    }

    /// Relative degradation between the first and the last sample,
    /// in `[−∞, 1]` (positive = the hit ratio dropped).
    pub fn relative_degradation(&self) -> f64 {
        match (self.hit_ratios.first(), self.hit_ratios.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => (first - last) / first,
            _ => 0.0,
        }
    }
}

/// Bytes that must be transferred to turn `old` into `new`: for every
/// server, the total size of blocks stored under `new` but not under `old`.
fn migration_bytes(old: &Placement, new: &Placement, scenario: &Scenario) -> Result<u64, SimError> {
    let library = scenario.library();
    let old_view = BlockPlacement::from_placement(old, library)?;
    let new_view = BlockPlacement::from_placement(new, library)?;
    let mut total = 0u64;
    for m in 0..scenario.num_servers() {
        for block in new_view.blocks_on(ServerId(m))? {
            if !old_view.contains(ServerId(m), block) {
                total += library
                    .block_size_bytes(block)
                    .map_err(trimcaching_scenario::ScenarioError::from)?;
            }
        }
    }
    Ok(total)
}

/// Replays `config.total_minutes` of the paper's pedestrian/bike/vehicle
/// mobility over `scenario`, evaluating (and, when `policy` is given,
/// re-running) `algorithm`'s placement at every sample instant.
///
/// With `policy = None` the placement computed at `t = 0` is kept for the
/// whole replay — exactly the Fig. 7 setting.
///
/// # Errors
///
/// Propagates topology, placement and evaluation errors.
pub fn replay_with_policy(
    scenario: &Scenario,
    area: DeploymentArea,
    algorithm: &(dyn PlacementAlgorithm + Sync),
    policy: Option<&ReplacementPolicy>,
    config: &ReplayConfig,
    mobility_seed: u64,
    fading_seed: u64,
) -> Result<ReplacementTrace, SimError> {
    if config.sample_interval_minutes == 0 || config.total_minutes < config.sample_interval_minutes
    {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "invalid replay timing: {} min total, {} min interval",
                config.total_minutes, config.sample_interval_minutes
            ),
        });
    }

    let mut fading_rng = StdRng::seed_from_u64(fading_seed);
    let mut mobility_rng = StdRng::seed_from_u64(mobility_seed);

    let initial = algorithm.place(scenario)?;
    let mut placement = initial.placement;
    // Reference level the policy compares against: the expected-rate hit
    // ratio right after (re-)placement.
    let mut reference_hit = scenario.hit_ratio(&placement);

    let mut trace = ReplacementTrace {
        times_min: vec![0.0],
        hit_ratios: vec![scenario.average_hit_ratio_under_fading(
            &placement,
            config.fading_realisations,
            &mut fading_rng,
        )?],
        replacements: 0,
        migrated_bytes: 0,
    };

    let initial_positions: Vec<_> = scenario.users().iter().map(|u| u.position()).collect();
    let mut mobility = MobilityModel::paper_mix(&initial_positions, area, &mut mobility_rng);
    let mut samples_since_replacement = 0usize;
    // One snapshot evolved in place through the incremental delta path
    // (bit-identical to per-sample full rebuilds, without re-deriving
    // the unaffected users' radio rows).
    let mut moved = scenario.clone();

    for sample in 1..=config.num_samples() {
        let positions = mobility.run_slots(config.slots_per_sample(), &mut mobility_rng);
        moved.update_user_positions(&positions)?;
        samples_since_replacement += 1;

        if let Some(policy) = policy {
            let current = moved.hit_ratio(&placement);
            let triggered = current < (1.0 - policy.trigger_drop) * reference_hit
                && samples_since_replacement >= policy.min_samples_between;
            if triggered {
                let refreshed = algorithm.place(&moved)?;
                trace.migrated_bytes +=
                    migration_bytes(&placement, &refreshed.placement, scenario)?;
                placement = refreshed.placement;
                reference_hit = moved.hit_ratio(&placement);
                trace.replacements += 1;
                samples_since_replacement = 0;
            }
        }

        let hit = moved.average_hit_ratio_under_fading(
            &placement,
            config.fading_realisations,
            &mut fading_rng,
        )?;
        trace
            .times_min
            .push((sample * config.sample_interval_minutes) as f64);
        trace.hit_ratios.push(hit);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use trimcaching_modellib::builders::SpecialCaseBuilder;
    use trimcaching_placement::TrimCachingGen;

    fn scenario() -> (Scenario, DeploymentArea) {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(3);
        let topology = TopologyConfig::paper_defaults()
            .with_servers(4)
            .with_users(8);
        let scenario = topology.generate(&library, 11, 0).unwrap();
        (scenario, DeploymentArea::paper_default())
    }

    #[test]
    fn static_replay_never_replaces() {
        let (scenario, area) = scenario();
        let gen = TrimCachingGen::new();
        let trace =
            replay_with_policy(&scenario, area, &gen, None, &ReplayConfig::smoke(), 7, 13).unwrap();
        assert_eq!(trace.replacements, 0);
        assert_eq!(trace.migrated_bytes, 0);
        assert_eq!(trace.times_min.len(), 3);
        assert_eq!(trace.times_min, vec![0.0, 20.0, 40.0]);
        for h in &trace.hit_ratios {
            assert!((0.0..=1.0).contains(h));
        }
        assert!(trace.mean_hit_ratio() >= 0.0);
    }

    #[test]
    fn aggressive_policy_replaces_and_reports_migration_cost() {
        let (scenario, area) = scenario();
        let gen = TrimCachingGen::new();
        // A 0.1% threshold re-places on essentially any degradation.
        let policy = ReplacementPolicy::with_trigger_drop(0.001);
        let config = ReplayConfig {
            total_minutes: 80,
            sample_interval_minutes: 20,
            fading_realisations: 0,
        };
        let adaptive =
            replay_with_policy(&scenario, area, &gen, Some(&policy), &config, 7, 13).unwrap();
        let static_trace = replay_with_policy(&scenario, area, &gen, None, &config, 7, 13).unwrap();
        // Mobility is random, so a specific run may or may not trigger; with
        // an almost-zero threshold over 80 minutes it practically always
        // does, and re-placing can only help the expected-rate hit ratio.
        assert!(
            adaptive.replacements >= 1,
            "expected at least one re-placement"
        );
        assert!(adaptive.migrated_bytes > 0);
        assert!(adaptive.mean_hit_ratio() >= static_trace.mean_hit_ratio() - 1e-9);
    }

    #[test]
    fn invalid_timing_is_rejected() {
        let (scenario, area) = scenario();
        let gen = TrimCachingGen::new();
        let bad = ReplayConfig {
            total_minutes: 10,
            sample_interval_minutes: 20,
            fading_realisations: 0,
        };
        assert!(replay_with_policy(&scenario, area, &gen, None, &bad, 1, 1).is_err());
        let bad = ReplayConfig {
            total_minutes: 10,
            sample_interval_minutes: 0,
            fading_realisations: 0,
        };
        assert!(replay_with_policy(&scenario, area, &gen, None, &bad, 1, 1).is_err());
    }

    #[test]
    fn migration_bytes_counts_only_new_blocks() {
        let (scenario, _) = scenario();
        let empty = scenario.empty_placement();
        let mut one = scenario.empty_placement();
        one.place(ServerId(0), trimcaching_modellib::ModelId(0))
            .unwrap();
        let cost = migration_bytes(&empty, &one, &scenario).unwrap();
        assert_eq!(
            cost,
            scenario
                .library()
                .model_size_bytes(trimcaching_modellib::ModelId(0))
                .unwrap()
        );
        // Migrating back to the empty placement costs nothing (removals are
        // free; only pushes consume backbone bandwidth).
        assert_eq!(migration_bytes(&one, &empty, &scenario).unwrap(), 0);
        assert_eq!(migration_bytes(&one, &one, &scenario).unwrap(), 0);
    }

    #[test]
    fn policy_constructors_validate_input() {
        assert_eq!(
            ReplacementPolicy::default(),
            ReplacementPolicy::five_percent()
        );
        let p = ReplacementPolicy::with_trigger_drop(0.2);
        assert_eq!(p.trigger_drop, 0.2);
        assert_eq!(ReplayConfig::default(), ReplayConfig::paper());
        assert_eq!(ReplayConfig::smoke().num_samples(), 2);
        assert_eq!(ReplayConfig::paper().slots_per_sample(), 240);
    }

    #[test]
    #[should_panic(expected = "trigger drop")]
    fn zero_trigger_drop_panics() {
        let _ = ReplacementPolicy::with_trigger_drop(0.0);
    }
}
