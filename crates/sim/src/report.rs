//! Tabular experiment results with CSV and Markdown rendering.
//!
//! Every experiment driver in [`crate::experiments`] produces an
//! [`ExperimentTable`]: a named table with an x-axis column and one column
//! per measured series (algorithm), each cell carrying a mean and a
//! standard deviation — mirroring how the paper reports its figures
//! (averages over network topologies with error bars).

use serde::{Deserialize, Serialize};

/// A single measured cell: mean ± standard deviation over repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Measurement {
    /// Mean over the repetitions.
    pub mean: f64,
    /// Standard deviation over the repetitions.
    pub std_dev: f64,
}

impl Measurement {
    /// Computes mean and standard deviation of the samples. An empty slice
    /// yields zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Self {
            mean,
            std_dev: variance.sqrt(),
        }
    }
}

/// One row of an experiment table: an x-axis value plus one measurement per
/// series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// The x-axis value (e.g. storage capacity in GB, number of servers).
    pub x: f64,
    /// One measurement per series, in the order of
    /// [`ExperimentTable::series`].
    pub cells: Vec<Measurement>,
}

/// A complete experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. `"fig4a"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Name of the x-axis (e.g. `"Edge server capacity Q (GB)"`).
    pub x_label: String,
    /// Name of the measured quantity (e.g. `"Cache hit ratio"`).
    pub y_label: String,
    /// Series (column) names, typically algorithm names.
    pub series: Vec<String>,
    /// The measured rows in x order.
    pub rows: Vec<Row>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of series —
    /// that is a programming error in the experiment driver.
    pub fn push_row(&mut self, x: f64, cells: Vec<Measurement>) {
        assert_eq!(
            cells.len(),
            self.series.len(),
            "row width must match the number of series"
        );
        self.rows.push(Row { x, cells });
    }

    /// The mean values of one series across all rows, in row order.
    pub fn series_means(&self, series: &str) -> Option<Vec<f64>> {
        let idx = self.series.iter().position(|s| s == series)?;
        Some(self.rows.iter().map(|r| r.cells[idx].mean).collect())
    }

    /// Average ratio `series_a / series_b` across rows (used for headline
    /// claims such as "Spec is 11.9% better than Gen on average").
    pub fn average_relative_gain(&self, series_a: &str, series_b: &str) -> Option<f64> {
        let a = self.series_means(series_a)?;
        let b = self.series_means(series_b)?;
        let ratios: Vec<f64> = a
            .iter()
            .zip(&b)
            .filter(|(_, b)| **b > 0.0)
            .map(|(a, b)| a / b - 1.0)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {s} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("| {:.4} |", row.x));
            for cell in &row.cells {
                out.push_str(&format!(" {:.4} ± {:.4} |", cell.mean, cell.std_dev));
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Renders the table as CSV (`x, <series> mean, <series> std, ...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push_str(&format!(",{s} mean,{s} std"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{}", row.x));
            for cell in &row.cells {
                out.push_str(&format!(",{},{}", cell.mean, cell.std_dev));
            }
            out.push('\n');
        }
        out
    }
}

/// A per-algorithm comparison (used for the running-time studies of
/// Fig. 6): one row per algorithm with its cache hit ratio and average
/// running time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Experiment identifier (e.g. `"fig6a"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// One row per algorithm.
    pub rows: Vec<ComparisonRow>,
}

/// One row of a [`ComparisonTable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Cache hit ratio (mean ± std over topologies).
    pub hit_ratio: Measurement,
    /// Running time in seconds (mean ± std over topologies).
    pub runtime_s: Measurement,
}

impl ComparisonTable {
    /// Creates an empty comparison table.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(
        &mut self,
        algorithm: impl Into<String>,
        hit_ratio: Measurement,
        runtime_s: Measurement,
    ) {
        self.rows.push(ComparisonRow {
            algorithm: algorithm.into(),
            hit_ratio,
            runtime_s,
        });
    }

    /// Ratio of running times `slow / fast` between two named algorithms
    /// (used for the paper's "×22 900 faster" style headlines).
    pub fn speedup(&self, fast: &str, slow: &str) -> Option<f64> {
        let fast = self
            .rows
            .iter()
            .find(|r| r.algorithm == fast)?
            .runtime_s
            .mean;
        let slow = self
            .rows
            .iter()
            .find(|r| r.algorithm == slow)?
            .runtime_s
            .mean;
        if fast <= 0.0 {
            return None;
        }
        Some(slow / fast)
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str("| Algorithm | Cache hit ratio | Average running time (s) |\n|---|---|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.4} ± {:.4} | {:.6} ± {:.6} |\n",
                row.algorithm,
                row.hit_ratio.mean,
                row.hit_ratio.std_dev,
                row.runtime_s.mean,
                row.runtime_s.std_dev
            ));
        }
        out.push('\n');
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("algorithm,hit ratio mean,hit ratio std,runtime_s mean,runtime_s std\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                row.algorithm,
                row.hit_ratio.mean,
                row.hit_ratio.std_dev,
                row.runtime_s.mean,
                row.runtime_s.std_dev
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "fig4a",
            "Cache hit ratio vs capacity",
            "Q (GB)",
            "Cache hit ratio",
            vec!["spec".into(), "gen".into()],
        );
        t.push_row(
            0.5,
            vec![
                Measurement {
                    mean: 0.6,
                    std_dev: 0.05,
                },
                Measurement {
                    mean: 0.5,
                    std_dev: 0.04,
                },
            ],
        );
        t.push_row(
            1.0,
            vec![
                Measurement {
                    mean: 0.9,
                    std_dev: 0.02,
                },
                Measurement {
                    mean: 0.8,
                    std_dev: 0.03,
                },
            ],
        );
        t
    }

    #[test]
    fn measurement_statistics_are_correct() {
        let m = Measurement::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m.mean - 2.5).abs() < 1e-12);
        assert!((m.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(Measurement::from_samples(&[]), Measurement::default());
        let single = Measurement::from_samples(&[7.0]);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn series_queries_and_gains() {
        let t = sample_table();
        assert_eq!(t.series_means("spec").unwrap(), vec![0.6, 0.9]);
        assert_eq!(t.series_means("gen").unwrap(), vec![0.5, 0.8]);
        assert!(t.series_means("missing").is_none());
        let gain = t.average_relative_gain("spec", "gen").unwrap();
        // (0.6/0.5 - 1 + 0.9/0.8 - 1) / 2 = (0.2 + 0.125) / 2
        assert!((gain - 0.1625).abs() < 1e-12);
        assert!(t.average_relative_gain("spec", "missing").is_none());
    }

    #[test]
    fn markdown_and_csv_contain_all_cells() {
        let t = sample_table();
        let md = t.to_markdown();
        assert!(md.contains("fig4a"));
        assert!(md.contains("| Q (GB) | spec | gen |"));
        assert!(md.contains("0.6000 ± 0.0500"));
        let csv = t.to_csv();
        assert!(csv.starts_with("Q (GB),spec mean,spec std,gen mean,gen std"));
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("0.5,0.6,0.05,0.5,0.04"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample_table();
        t.push_row(2.0, vec![Measurement::default()]);
    }

    #[test]
    fn comparison_table_reports_speedups() {
        let mut t = ComparisonTable::new("fig6a", "Algorithms vs optimal");
        t.push_row(
            "exhaustive-search",
            Measurement {
                mean: 0.8,
                std_dev: 0.01,
            },
            Measurement {
                mean: 10.0,
                std_dev: 1.0,
            },
        );
        t.push_row(
            "trimcaching-spec",
            Measurement {
                mean: 0.8,
                std_dev: 0.01,
            },
            Measurement {
                mean: 0.001,
                std_dev: 0.0001,
            },
        );
        let speedup = t.speedup("trimcaching-spec", "exhaustive-search").unwrap();
        assert!((speedup - 10_000.0).abs() < 1e-6);
        assert!(t.speedup("missing", "exhaustive-search").is_none());
        let md = t.to_markdown();
        assert!(md.contains("exhaustive-search"));
        assert!(md.contains("trimcaching-spec"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0.8"));
    }
}
