//! Declarative scenario & parameter sweeps.
//!
//! A [`SweepSpec`] names typed axes over four layers of the stack —
//! topology ([`CityScaleConfig`] knobs and heterogeneous storage
//! tiers), workload (the [`WorkloadFamily`] library), policy (eviction
//! × fill granularity × control loop) and runtime (shard count, fault
//! injection) — and expands into the full cartesian grid of [`Cell`]s.
//! Expansion is *canonical*: axes always nest in the same order
//! (topology → workload → policy → runtime) no matter how the spec was
//! written down, every cell derives its seed from the FNV-1a
//! fingerprint of the canonical spec text plus its own index, and the
//! [`runner`] executes cells across a scoped-thread pool whose size
//! changes wall-clock time only. The resulting [`SweepReport`] renders
//! to CSV, JSON and Markdown byte-identically for any worker count —
//! the same determinism contract the sharded engine honours, one level
//! up.
//!
//! Spec files are a line-oriented `key = value` dialect (a strict
//! TOML subset — the environment is offline, so no external parser);
//! see [`spec`] for the grammar and the canonical writer that defines
//! the fingerprint.
//!
//! [`CityScaleConfig`]: crate::topology::CityScaleConfig

pub mod report;
pub mod runner;
pub mod spec;

pub use report::{parse_csv, to_csv, to_json, to_markdown};
pub use runner::{run_sweep, CellOutcome, SweepReport};
pub use spec::{parse_spec, write_spec};

use trimcaching_runtime::{CostAwareLfu, EvictionPolicy, FillGranularity, Lfu, Lru};

use crate::SimError;

/// The workload families a sweep can schedule. `Stationary` and
/// `Shift` existed before the sweep harness; the other four are the
/// generators this subsystem introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// Stationary Zipf demand — the paper's baseline arrivals.
    Stationary,
    /// Seeded piecewise popularity permutations
    /// ([`trimcaching_runtime::PopularityShift`]).
    Shift,
    /// Transient hot-model spike
    /// ([`trimcaching_runtime::Workload::flash_crowd`]).
    FlashCrowd,
    /// Periodic popularity rotation
    /// ([`trimcaching_runtime::Workload::diurnal_tide`]).
    Diurnal,
    /// Correlated regional popularity: one clustered demand class per
    /// grid region of the city, stationary arrivals.
    Regional,
    /// Commuter population: users dropped at home anchors in the
    /// residential band, stationary arrivals.
    Commuter,
}

impl WorkloadFamily {
    /// Stable spec-file name of the family.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadFamily::Stationary => "stationary",
            WorkloadFamily::Shift => "shift",
            WorkloadFamily::FlashCrowd => "flash-crowd",
            WorkloadFamily::Diurnal => "diurnal",
            WorkloadFamily::Regional => "regional",
            WorkloadFamily::Commuter => "commuter",
        }
    }

    /// Parses a spec-file name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown family.
    pub fn parse(s: &str) -> Result<Self, SimError> {
        match s {
            "stationary" => Ok(WorkloadFamily::Stationary),
            "shift" => Ok(WorkloadFamily::Shift),
            "flash-crowd" => Ok(WorkloadFamily::FlashCrowd),
            "diurnal" => Ok(WorkloadFamily::Diurnal),
            "regional" => Ok(WorkloadFamily::Regional),
            "commuter" => Ok(WorkloadFamily::Commuter),
            other => Err(SimError::InvalidConfig {
                reason: format!("unknown workload family '{other}'"),
            }),
        }
    }

    /// Every family, in canonical (markdown-section) order.
    pub fn all() -> [WorkloadFamily; 6] {
        [
            WorkloadFamily::Stationary,
            WorkloadFamily::Shift,
            WorkloadFamily::FlashCrowd,
            WorkloadFamily::Diurnal,
            WorkloadFamily::Regional,
            WorkloadFamily::Commuter,
        ]
    }
}

/// The eviction policies a sweep can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Least-frequently-used.
    Lfu,
    /// Cost-aware LFU (the serving default).
    CostLfu,
}

impl PolicyKind {
    /// Stable spec-file name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::CostLfu => "cost-lfu",
        }
    }

    /// Parses a spec-file name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown policy.
    pub fn parse(s: &str) -> Result<Self, SimError> {
        match s {
            "lru" => Ok(PolicyKind::Lru),
            "lfu" => Ok(PolicyKind::Lfu),
            "cost-lfu" => Ok(PolicyKind::CostLfu),
            other => Err(SimError::InvalidConfig {
                reason: format!("unknown eviction policy '{other}'"),
            }),
        }
    }

    /// The policy object behind the name.
    pub fn policy(self) -> &'static (dyn EvictionPolicy + Sync) {
        match self {
            PolicyKind::Lru => &Lru,
            PolicyKind::Lfu => &Lfu,
            PolicyKind::CostLfu => &CostAwareLfu,
        }
    }
}

/// A declarative sweep: scalar base parameters plus one value list per
/// axis. Expansion nests the axes canonically — topology (`users`,
/// `capacity_gb`, `storage_tiers`), workload (`workloads`), policy
/// (`policies`, `granularities`, `control`), runtime (`shards`,
/// `faults`) — with the last axis fastest, so cell indices (and hence
/// cell seeds) never depend on the order the spec file declared its
/// lines in.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (artefact prefix, report heading).
    pub name: String,
    /// Base seed folded into the fingerprint.
    pub seed: u64,
    /// Serving horizon per cell, in simulated seconds.
    pub duration_s: f64,
    /// Per-user request rate in Hz.
    pub request_rate_hz: f64,
    /// City side length in metres.
    pub area_side_m: f64,
    /// Poisson server intensity per km².
    pub servers_per_km2: f64,
    /// Clustered demand classes for non-regional families.
    pub demand_classes: usize,
    /// Grid side for the `regional` family (`grid²` demand classes).
    pub regional_grid: usize,
    /// Models per backbone family in the library.
    pub models_per_backbone: usize,
    /// Library construction seed.
    pub library_seed: u64,
    /// Mobility slot length in seconds (`0` disables mobility).
    pub mobility_slot_s: f64,
    /// Topology axis: number of users.
    pub users: Vec<usize>,
    /// Topology axis: per-server capacity in GB.
    pub capacity_gb: Vec<f64>,
    /// Topology axis: storage-tier multiplier sets (an empty set is the
    /// homogeneous paper capacity).
    pub storage_tiers: Vec<Vec<f64>>,
    /// Workload axis.
    pub workloads: Vec<WorkloadFamily>,
    /// Policy axis: eviction policies.
    pub policies: Vec<PolicyKind>,
    /// Policy axis: fill granularities.
    pub granularities: Vec<FillGranularity>,
    /// Policy axis: control loop on/off.
    pub control: Vec<bool>,
    /// Runtime axis: shard counts.
    pub shards: Vec<usize>,
    /// Runtime axis: fault injection on/off.
    pub faults: Vec<bool>,
}

impl SweepSpec {
    /// A small single-valued spec — the base every parsed spec file
    /// starts from, and a quick smoke grid on its own.
    pub fn smoke() -> Self {
        Self {
            name: "sweep".into(),
            seed: 2024,
            duration_s: 120.0,
            request_rate_hz: 0.05,
            area_side_m: 1_500.0,
            servers_per_km2: 8.0,
            demand_classes: 16,
            regional_grid: 2,
            models_per_backbone: 2,
            library_seed: 7,
            mobility_slot_s: 0.0,
            users: vec![300],
            capacity_gb: vec![0.5],
            storage_tiers: vec![vec![]],
            workloads: vec![WorkloadFamily::Stationary],
            policies: vec![PolicyKind::CostLfu],
            granularities: vec![FillGranularity::Block],
            control: vec![false],
            shards: vec![1],
            faults: vec![false],
        }
    }

    /// Validates every scalar and axis.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the first bad field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |reason: String| Err(SimError::InvalidConfig { reason });
        if self.name.is_empty() || !self.name.chars().all(is_name_char) {
            return bad(format!(
                "sweep name must be non-empty [A-Za-z0-9_-], got '{}'",
                self.name
            ));
        }
        for (field, value) in [
            ("duration_s", self.duration_s),
            ("request_rate_hz", self.request_rate_hz),
            ("area_side_m", self.area_side_m),
            ("servers_per_km2", self.servers_per_km2),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return bad(format!("{field} must be positive and finite, got {value}"));
            }
        }
        if !(self.mobility_slot_s.is_finite() && self.mobility_slot_s >= 0.0) {
            return bad(format!(
                "mobility_slot_s must be non-negative, got {}",
                self.mobility_slot_s
            ));
        }
        for (field, value) in [
            ("demand_classes", self.demand_classes),
            ("regional_grid", self.regional_grid),
            ("models_per_backbone", self.models_per_backbone),
        ] {
            if value == 0 {
                return bad(format!("{field} must be at least 1"));
            }
        }
        for (axis, len) in [
            ("users", self.users.len()),
            ("capacity_gb", self.capacity_gb.len()),
            ("storage_tiers", self.storage_tiers.len()),
            ("workloads", self.workloads.len()),
            ("policies", self.policies.len()),
            ("granularities", self.granularities.len()),
            ("control", self.control.len()),
            ("shards", self.shards.len()),
            ("faults", self.faults.len()),
        ] {
            if len == 0 {
                return bad(format!("axis '{axis}' needs at least one value"));
            }
        }
        if self.users.contains(&0) {
            return bad("axis 'users' values must be at least 1".into());
        }
        if self.shards.contains(&0) {
            return bad("axis 'shards' values must be at least 1".into());
        }
        if self
            .capacity_gb
            .iter()
            .any(|&q| !(q.is_finite() && q > 0.0))
        {
            return bad(format!(
                "axis 'capacity_gb' values must be positive and finite: {:?}",
                self.capacity_gb
            ));
        }
        for tiers in &self.storage_tiers {
            if tiers.iter().any(|&t| !(t.is_finite() && t > 0.0)) {
                return bad(format!(
                    "storage tier multipliers must be positive and finite: {tiers:?}"
                ));
            }
        }
        Ok(())
    }

    /// The FNV-1a fingerprint of the canonical spec text — the anchor
    /// every cell seed derives from.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(spec::write_spec(self).as_bytes())
    }

    /// Expands the spec into its full cell grid in canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when [`SweepSpec::validate`]
    /// rejects the spec.
    pub fn cells(&self) -> Result<Vec<Cell>, SimError> {
        self.validate()?;
        let fingerprint = self.fingerprint();
        let mut cells = Vec::with_capacity(self.num_cells());
        for &users in &self.users {
            for &capacity_gb in &self.capacity_gb {
                for tiers in &self.storage_tiers {
                    for &workload in &self.workloads {
                        for &policy in &self.policies {
                            for &granularity in &self.granularities {
                                for &control in &self.control {
                                    for &shards in &self.shards {
                                        for &faults in &self.faults {
                                            let index = cells.len();
                                            cells.push(Cell {
                                                index,
                                                seed: cell_seed(fingerprint, index),
                                                users,
                                                capacity_gb,
                                                tiers: tiers.clone(),
                                                workload,
                                                policy,
                                                granularity,
                                                control,
                                                shards,
                                                faults,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// The size of the full grid.
    pub fn num_cells(&self) -> usize {
        self.users.len()
            * self.capacity_gb.len()
            * self.storage_tiers.len()
            * self.workloads.len()
            * self.policies.len()
            * self.granularities.len()
            * self.control.len()
            * self.shards.len()
            * self.faults.len()
    }
}

/// Characters allowed in a sweep name (it prefixes artefact files).
fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_'
}

/// One point of the grid: every axis pinned to a value, plus the
/// derived seed that makes the cell reproducible from the spec alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in canonical expansion order.
    pub index: usize,
    /// Derived seed: `fnv1a(fingerprint_le ‖ index_le)`.
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Per-server base capacity in GB.
    pub capacity_gb: f64,
    /// Storage-tier multipliers (empty = homogeneous).
    pub tiers: Vec<f64>,
    /// Workload family.
    pub workload: WorkloadFamily,
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Fill granularity.
    pub granularity: FillGranularity,
    /// Control loop on/off.
    pub control: bool,
    /// Shard count.
    pub shards: usize,
    /// Fault injection on/off.
    pub faults: bool,
}

impl Cell {
    /// The spec-file rendering of the tier set (`flat` when empty).
    pub fn tiers_label(&self) -> String {
        spec::tiers_to_string(&self.tiers)
    }
}

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The seed of cell `index` under a spec fingerprint: FNV-1a over the
/// little-endian fingerprint followed by the little-endian index.
pub fn cell_seed(fingerprint: u64, index: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&fingerprint.to_le_bytes());
    bytes[8..].copy_from_slice(&(index as u64).to_le_bytes());
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_match_the_reference() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cell_seeds_depend_on_fingerprint_and_index() {
        let a = cell_seed(1, 0);
        assert_ne!(a, cell_seed(1, 1));
        assert_ne!(a, cell_seed(2, 0));
        assert_eq!(a, cell_seed(1, 0));
    }

    #[test]
    fn expansion_is_canonical_and_sized() {
        let mut spec = SweepSpec::smoke();
        spec.users = vec![100, 200];
        spec.policies = vec![PolicyKind::Lru, PolicyKind::CostLfu];
        spec.shards = vec![1, 2];
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 8);
        assert_eq!(spec.num_cells(), 8);
        // Last axis fastest: shards toggles first, then policies, then users.
        assert_eq!(cells[0].shards, 1);
        assert_eq!(cells[1].shards, 2);
        assert_eq!(cells[0].policy, PolicyKind::Lru);
        assert_eq!(cells[2].policy, PolicyKind::CostLfu);
        assert_eq!(cells[0].users, 100);
        assert_eq!(cells[4].users, 200);
        // Indices are dense and seeds all distinct.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, cell_seed(spec.fingerprint(), i));
        }
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let ok = SweepSpec::smoke();
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.users = vec![];
        assert!(bad.cells().is_err());
        let mut bad = ok.clone();
        bad.users = vec![0];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.duration_s = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.capacity_gb = vec![-1.0];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.storage_tiers = vec![vec![1.0, 0.0]];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.shards = vec![0];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.name = "bad name!".into();
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.regional_grid = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn names_parse_and_round_trip() {
        for family in WorkloadFamily::all() {
            assert_eq!(WorkloadFamily::parse(family.name()).unwrap(), family);
        }
        assert!(WorkloadFamily::parse("tide").is_err());
        for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::CostLfu] {
            assert_eq!(PolicyKind::parse(policy.name()).unwrap(), policy);
        }
        assert!(PolicyKind::parse("mru").is_err());
        // Policy objects resolve to the advertised implementations.
        assert_eq!(PolicyKind::CostLfu.policy().name(), CostAwareLfu.name());
    }
}
