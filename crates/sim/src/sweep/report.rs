//! Sweep artefacts: hand-rolled CSV, JSON and Markdown renderers plus
//! the CSV re-parser behind `sweep-report`.
//!
//! All three renderers are pure functions of the [`SweepReport`], and a
//! report is itself deterministic in the spec — so artefact bytes are
//! identical for any sweep worker count, which `sweep_smoke` in CI
//! pins. The CSV leads with `# key = value` comment lines carrying the
//! report identity; [`parse_csv`] reads them back, so a saved CSV
//! round-trips into the exact [`SweepReport`] that wrote it.

use trimcaching_runtime::FillGranularity;

use super::spec::{bool_to_string, granularity_to_string, tiers_to_string};
use super::{Cell, CellOutcome, PolicyKind, SweepReport, WorkloadFamily};
use crate::SimError;

/// The CSV column headers, in order.
const CSV_HEADER: &str = "index,seed,users,capacity_gb,tiers,workload,policy,granularity,\
                          control,shards,faults,requests,hit_ratio,p95_latency_ms,availability,\
                          backhaul_bytes,req_per_s";

/// Renders the per-cell CSV artefact.
pub fn to_csv(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("# sweep = {}\n", report.name));
    out.push_str(&format!("# fingerprint = {:016x}\n", report.fingerprint));
    out.push_str(&format!("# duration_s = {}\n", report.duration_s));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for o in &report.outcomes {
        let c = &o.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.index,
            c.seed,
            c.users,
            c.capacity_gb,
            tiers_to_string(&c.tiers),
            c.workload.name(),
            c.policy.name(),
            granularity_to_string(c.granularity),
            bool_to_string(c.control),
            c.shards,
            bool_to_string(c.faults),
            o.requests,
            o.hit_ratio,
            o.p95_latency_ms,
            o.availability,
            o.backhaul_bytes,
            o.req_per_s,
        ));
    }
    out
}

/// Renders the JSON artefact (hand-rolled writer, no external deps).
pub fn to_json(report: &SweepReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", report.name));
    out.push_str(&format!(
        "  \"fingerprint\": \"{:016x}\",\n",
        report.fingerprint
    ));
    out.push_str(&format!("  \"duration_s\": {},\n", report.duration_s));
    out.push_str("  \"cells\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let c = &o.cell;
        out.push_str(&format!(
            "    {{\"index\": {}, \"seed\": {}, \"users\": {}, \"capacity_gb\": {}, \
             \"tiers\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"granularity\": \"{}\", \"control\": {}, \"shards\": {}, \"faults\": {}, \
             \"requests\": {}, \"hit_ratio\": {}, \"p95_latency_ms\": {}, \
             \"availability\": {}, \"backhaul_bytes\": {}, \"req_per_s\": {}}}{}\n",
            c.index,
            c.seed,
            c.users,
            c.capacity_gb,
            tiers_to_string(&c.tiers),
            c.workload.name(),
            c.policy.name(),
            granularity_to_string(c.granularity),
            c.control,
            c.shards,
            c.faults,
            o.requests,
            o.hit_ratio,
            o.p95_latency_ms,
            o.availability,
            o.backhaul_bytes,
            o.req_per_s,
            if i + 1 == report.outcomes.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the Markdown artefact: one grid per workload family present
/// in the report, in canonical family order — the tables EXPERIMENTS.md
/// embeds.
pub fn to_markdown(report: &SweepReport) -> String {
    let mut out = format!(
        "## Sweep `{}`\n\nFingerprint `{:016x}` · {} cells · horizon {} s. Cell seeds \
         derive from the fingerprint alone: `seed = fnv1a(fingerprint_le ‖ index_le)`.\n",
        report.name,
        report.fingerprint,
        report.outcomes.len(),
        report.duration_s,
    );
    for family in WorkloadFamily::all() {
        let rows: Vec<&CellOutcome> = report
            .outcomes
            .iter()
            .filter(|o| o.cell.workload == family)
            .collect();
        if rows.is_empty() {
            continue;
        }
        out.push_str(&format!("\n### Workload family `{}`\n\n", family.name()));
        out.push_str(
            "| cell | users | cap (GB) | tiers | policy | gran | ctrl | shards | faults | \
             hit ratio | p95 (ms) | availability | backhaul (MiB) | req/s |\n",
        );
        out.push_str(
            "|-----:|------:|---------:|-------|--------|------|------|-------:|--------|\
             ----------:|---------:|-------------:|---------------:|------:|\n",
        );
        for o in rows {
            let c = &o.cell;
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.4} | {:.2} | {:.4} | \
                 {:.2} | {:.2} |\n",
                c.index,
                c.users,
                c.capacity_gb,
                tiers_to_string(&c.tiers),
                c.policy.name(),
                granularity_to_string(c.granularity),
                bool_to_string(c.control),
                c.shards,
                bool_to_string(c.faults),
                o.hit_ratio,
                o.p95_latency_ms,
                o.availability,
                o.backhaul_bytes as f64 / (1024.0 * 1024.0),
                o.req_per_s,
            ));
        }
    }
    out
}

/// Parses a CSV artefact written by [`to_csv`] back into the
/// [`SweepReport`] that produced it.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for missing identity comments, a
/// wrong header, or malformed rows.
pub fn parse_csv(text: &str) -> Result<SweepReport, SimError> {
    let bad = |reason: String| SimError::InvalidConfig {
        reason: format!("sweep csv: {reason}"),
    };
    let mut name: Option<String> = None;
    let mut fingerprint: Option<u64> = None;
    let mut duration_s: Option<f64> = None;
    let mut outcomes = Vec::new();
    let mut header_seen = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some((key, value)) = comment.split_once('=') {
                match key.trim() {
                    "sweep" => name = Some(value.trim().to_string()),
                    "fingerprint" => {
                        fingerprint = Some(
                            u64::from_str_radix(value.trim(), 16)
                                .map_err(|_| bad(format!("bad fingerprint '{value}'")))?,
                        );
                    }
                    "duration_s" => {
                        duration_s = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|_| bad(format!("bad duration '{value}'")))?,
                        );
                    }
                    _ => {}
                }
            }
            continue;
        }
        if !header_seen {
            if line != CSV_HEADER {
                return Err(bad(format!("unexpected header '{line}'")));
            }
            header_seen = true;
            continue;
        }
        outcomes.push(parse_row(line)?);
    }
    Ok(SweepReport {
        name: name.ok_or_else(|| bad("missing '# sweep = ...' line".into()))?,
        fingerprint: fingerprint.ok_or_else(|| bad("missing '# fingerprint = ...' line".into()))?,
        duration_s: duration_s.ok_or_else(|| bad("missing '# duration_s = ...' line".into()))?,
        outcomes,
    })
}

/// Parses one CSV data row.
fn parse_row(line: &str) -> Result<CellOutcome, SimError> {
    let bad = |reason: String| SimError::InvalidConfig {
        reason: format!("sweep csv row '{line}': {reason}"),
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 17 {
        return Err(bad(format!("expected 17 fields, got {}", fields.len())));
    }
    fn num<T: std::str::FromStr>(field: &str) -> Result<T, SimError> {
        field.parse().map_err(|_| SimError::InvalidConfig {
            reason: format!("sweep csv: cannot parse number '{field}'"),
        })
    }
    let tiers = if fields[4] == "flat" {
        Vec::new()
    } else {
        fields[4]
            .split(':')
            .map(num::<f64>)
            .collect::<Result<_, _>>()?
    };
    let granularity = match fields[7] {
        "block" => FillGranularity::Block,
        "whole-model" => FillGranularity::WholeModel,
        other => return Err(bad(format!("unknown granularity '{other}'"))),
    };
    let flag = |field: &str| -> Result<bool, SimError> {
        match field {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(SimError::InvalidConfig {
                reason: format!("sweep csv: expected on/off, got '{other}'"),
            }),
        }
    };
    Ok(CellOutcome {
        cell: Cell {
            index: num(fields[0])?,
            seed: num(fields[1])?,
            users: num(fields[2])?,
            capacity_gb: num(fields[3])?,
            tiers,
            workload: WorkloadFamily::parse(fields[5])?,
            policy: PolicyKind::parse(fields[6])?,
            granularity,
            control: flag(fields[8])?,
            shards: num(fields[9])?,
            faults: flag(fields[10])?,
        },
        requests: num(fields[11])?,
        hit_ratio: num(fields[12])?,
        p95_latency_ms: num(fields[13])?,
        availability: num(fields[14])?,
        backhaul_bytes: num(fields[15])?,
        req_per_s: num(fields[16])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SweepReport {
        let cell = |index: usize, workload: WorkloadFamily, shards: usize| CellOutcome {
            cell: Cell {
                index,
                seed: super::super::cell_seed(0xdead_beef, index),
                users: 300,
                capacity_gb: 0.5,
                tiers: if index.is_multiple_of(2) {
                    vec![]
                } else {
                    vec![1.0, 2.0, 0.5]
                },
                workload,
                policy: PolicyKind::CostLfu,
                granularity: FillGranularity::Block,
                control: false,
                shards,
                faults: index % 2 == 1,
            },
            requests: 100 + index as u64,
            hit_ratio: 0.5 + index as f64 * 0.01,
            p95_latency_ms: 230.25,
            availability: 0.875,
            backhaul_bytes: 1_048_576 * (index as u64 + 1),
            req_per_s: 1.5,
        };
        SweepReport {
            name: "sample".into(),
            fingerprint: 0xdead_beef,
            duration_s: 120.0,
            outcomes: vec![
                cell(0, WorkloadFamily::FlashCrowd, 1),
                cell(1, WorkloadFamily::FlashCrowd, 2),
                cell(2, WorkloadFamily::Regional, 1),
            ],
        }
    }

    #[test]
    fn csv_round_trips_exactly() {
        let report = sample_report();
        let csv = to_csv(&report);
        let parsed = parse_csv(&csv).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(to_csv(&parsed), csv);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("# sweep = x\n# fingerprint = zz\n").is_err());
        let valid = to_csv(&sample_report());
        let truncated = valid.replace(",flash-crowd,", ",tide,");
        assert!(parse_csv(&truncated).is_err());
        let wide = format!("{valid}1,2,3\n");
        assert!(parse_csv(&wide).is_err());
        let no_header = valid.replace(CSV_HEADER, "a,b,c");
        assert!(parse_csv(&no_header).is_err());
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = to_json(&sample_report());
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"index\":").count(), 3);
        assert!(json.contains("\"fingerprint\": \"00000000deadbeef\""));
        assert!(json.contains("\"tiers\": \"1:2:0.5\""));
        assert!(json.contains("\"faults\": true"));
        // Balanced braces and brackets (hand-rolled writer sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn markdown_groups_by_family_in_canonical_order() {
        let md = to_markdown(&sample_report());
        let flash = md.find("### Workload family `flash-crowd`").unwrap();
        let regional = md.find("### Workload family `regional`").unwrap();
        assert!(flash < regional, "canonical family order");
        assert!(!md.contains("`diurnal`"), "absent families are skipped");
        assert!(md.contains("| 0.5000 |"), "hit ratio formatted at 4 places");
        assert!(md.contains("| 230.25 |"), "p95 in ms at 2 places");
        assert!(md.contains("00000000deadbeef"));
    }
}
