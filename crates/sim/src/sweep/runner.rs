//! Cell execution: the scoped-thread fan-out that serves every cell of
//! a sweep grid.
//!
//! Each cell runs on **one** engine worker thread inside a
//! [`ShardedServeEngine`] — parallelism lives at the sweep level, where
//! workers claim cell indices from an atomic counter exactly like the
//! Monte-Carlo driver claims topologies. Results land in an
//! index-addressed slot vector, so the report order (and therefore
//! every artefact byte) is independent of the worker count; a cell is
//! also individually reproducible from `(spec, index)` alone, since its
//! seed derives from the spec fingerprint.

use parking_lot::Mutex;

use trimcaching_modellib::builders::SpecialCaseBuilder;
use trimcaching_modellib::ModelId;
use trimcaching_runtime::{
    ControlConfig, FaultConfig, PopularityShift, ServeConfig, ShardedServeEngine, Workload,
};

use super::{Cell, SweepSpec, WorkloadFamily};
use crate::topology::CityScaleConfig;
use crate::SimError;

/// Fraction of the horizon at which a flash crowd (or outage storm)
/// begins.
const EVENT_START_FRACTION: f64 = 0.3;
/// Fraction of the horizon an injected event lasts.
const EVENT_LENGTH_FRACTION: f64 = 0.3;
/// Popularity boost of the flash-crowd hot model.
const FLASH_BOOST: f64 = 4.0;
/// Piecewise epochs of the `shift` and `diurnal` families.
const PHASES: usize = 4;
/// Fraction of servers an outage storm takes down.
const STORM_DOWN_FRACTION: f64 = 0.25;

/// The measured outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: Cell,
    /// Requests issued over the horizon.
    pub requests: u64,
    /// Cache hit ratio.
    pub hit_ratio: f64,
    /// 95th-percentile serving latency in milliseconds (`0` when no
    /// request was served).
    pub p95_latency_ms: f64,
    /// Fraction of requests served within their deadline.
    pub availability: f64,
    /// Bytes moved over the backhaul by fills and migrations.
    pub backhaul_bytes: u64,
    /// Simulated request throughput (`requests / duration_s`).
    pub req_per_s: f64,
}

/// A completed sweep: the spec identity plus one outcome per cell, in
/// canonical cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name from the spec.
    pub name: String,
    /// FNV-1a fingerprint of the canonical spec.
    pub fingerprint: u64,
    /// Horizon the cells served, in simulated seconds.
    pub duration_s: f64,
    /// Per-cell outcomes, indexed by cell index.
    pub outcomes: Vec<CellOutcome>,
}

/// Expands `spec` and serves every cell across `threads` workers
/// (`0` = one per available CPU). The returned report is identical for
/// any worker count.
///
/// # Errors
///
/// Returns the first [`SimError`] produced by spec validation, topology
/// generation or a serving engine.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SimError> {
    let cells = spec.cells()?;
    let results: Mutex<Vec<Option<CellOutcome>>> = Mutex::new(vec![None; cells.len()]);
    let error: Mutex<Option<SimError>> = Mutex::new(None);
    let next_index = std::sync::atomic::AtomicUsize::new(0);
    let pool = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let workers = pool.min(cells.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if index >= cells.len() {
                    break;
                }
                if error.lock().is_some() {
                    break;
                }
                match run_cell(spec, &cells[index]) {
                    Ok(outcome) => results.lock()[index] = Some(outcome),
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let Some(outcomes) = results.into_inner().into_iter().collect::<Option<Vec<_>>>() else {
        // Unreachable in practice: every worker either fills its slot or
        // records the error handled above. Kept as an error, not a
        // panic, so a bug here cannot take down a long sweep.
        return Err(SimError::InvalidConfig {
            reason: "internal: a sweep cell finished with neither a result nor an error".into(),
        });
    };
    Ok(SweepReport {
        name: spec.name.clone(),
        fingerprint: spec.fingerprint(),
        duration_s: spec.duration_s,
        outcomes,
    })
}

/// Serves one cell: builds its topology, workload and serving
/// configuration from `(spec, cell)` and runs the sharded engine on a
/// single worker thread.
///
/// # Errors
///
/// Propagates topology, workload and engine errors as [`SimError`].
pub fn run_cell(spec: &SweepSpec, cell: &Cell) -> Result<CellOutcome, SimError> {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(spec.models_per_backbone)
        .build(spec.library_seed);
    let mut city = CityScaleConfig::district()
        .with_users(cell.users)
        .with_servers_per_km2(spec.servers_per_km2);
    city.area_side_m = spec.area_side_m;
    city.capacity_gb = cell.capacity_gb;
    if !cell.tiers.is_empty() {
        city = city.with_storage_tiers(cell.tiers.clone());
    }
    city = match cell.workload {
        WorkloadFamily::Regional => city.with_regional_grid(spec.regional_grid),
        WorkloadFamily::Commuter => city
            .with_commuter_homes()
            .with_demand_classes(spec.demand_classes),
        _ => city.with_demand_classes(spec.demand_classes),
    };
    let scenario = city.generate(&library, cell.seed, 0)?;

    let mut config = ServeConfig::paper_defaults()
        .with_seed(cell.seed)
        .with_duration_s(spec.duration_s)
        .with_request_rate_hz(spec.request_rate_hz)
        .with_granularity(cell.granularity);
    if spec.mobility_slot_s > 0.0 {
        config = config.with_mobility_slot_s(spec.mobility_slot_s);
    }
    if cell.control {
        config = config.with_control(ControlConfig::paper_defaults());
    }
    if cell.faults {
        let storm = FaultConfig::outage_storm(
            scenario.num_servers(),
            STORM_DOWN_FRACTION,
            spec.duration_s * EVENT_START_FRACTION,
            spec.duration_s * EVENT_LENGTH_FRACTION,
            cell.seed,
        )?
        .with_failover(true);
        config = config.with_faults(storm);
    }

    let workload = match cell.workload {
        // Regional and commuter are topology-level families: their
        // arrivals stay stationary over the (clustered) demand.
        WorkloadFamily::Stationary | WorkloadFamily::Regional | WorkloadFamily::Commuter => None,
        WorkloadFamily::Shift => Some(
            PopularityShift::new(spec.duration_s / PHASES as f64, PHASES, cell.seed)
                .workload(scenario.demand(), spec.request_rate_hz)?,
        ),
        WorkloadFamily::FlashCrowd => Some(Workload::flash_crowd(
            scenario.demand(),
            spec.request_rate_hz,
            spec.duration_s * EVENT_START_FRACTION,
            spec.duration_s * EVENT_LENGTH_FRACTION,
            ModelId(0),
            FLASH_BOOST,
        )?),
        WorkloadFamily::Diurnal => Some(Workload::diurnal_tide(
            scenario.demand(),
            spec.request_rate_hz,
            spec.duration_s,
            PHASES,
            1,
        )?),
    };

    let mut engine = ShardedServeEngine::new(&scenario, cell.policy.policy(), config, cell.shards)?
        .with_threads(1);
    if let Some(workload) = workload {
        engine.set_workload(workload)?;
    }
    let report = engine.run()?;
    let metrics = &report.metrics;
    Ok(CellOutcome {
        cell: cell.clone(),
        requests: metrics.requests,
        hit_ratio: metrics.hit_ratio(),
        p95_latency_ms: metrics.p95_latency_s().map_or(0.0, |s| s * 1e3),
        availability: metrics.availability(),
        backhaul_bytes: metrics.backhaul_bytes_moved,
        req_per_s: metrics.requests as f64 / spec.duration_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::PolicyKind;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::smoke();
        spec.name = "runner-test".into();
        spec.duration_s = 60.0;
        spec.users = vec![120];
        spec.area_side_m = 1_000.0;
        spec.demand_classes = 8;
        spec
    }

    #[test]
    fn sweep_reports_are_identical_across_worker_counts() {
        let mut spec = tiny_spec();
        spec.workloads = vec![WorkloadFamily::Stationary, WorkloadFamily::FlashCrowd];
        spec.policies = vec![PolicyKind::Lru, PolicyKind::CostLfu];
        spec.shards = vec![1, 2];
        let one = run_sweep(&spec, 1).unwrap();
        let four = run_sweep(&spec, 4).unwrap();
        assert_eq!(one, four);
        assert_eq!(one.outcomes.len(), 8);
        assert!(one.outcomes.iter().all(|o| o.requests > 0));
    }

    #[test]
    fn every_family_serves_and_seeds_are_reproducible() {
        let mut spec = tiny_spec();
        spec.workloads = WorkloadFamily::all().to_vec();
        let report = run_sweep(&spec, 0).unwrap();
        assert_eq!(report.outcomes.len(), 6);
        for outcome in &report.outcomes {
            assert!(outcome.requests > 0, "{:?} served nothing", outcome.cell);
            assert!(outcome.hit_ratio >= 0.0 && outcome.hit_ratio <= 1.0);
            assert!(outcome.availability >= 0.0 && outcome.availability <= 1.0);
            assert!((outcome.req_per_s - outcome.requests as f64 / 60.0).abs() < 1e-12);
        }
        // A cell re-run standalone from (spec, cell) matches the report.
        let cells = spec.cells().unwrap();
        let alone = run_cell(&spec, &cells[2]).unwrap();
        assert_eq!(alone, report.outcomes[2]);
    }

    #[test]
    fn faulted_and_controlled_cells_run() {
        let mut spec = tiny_spec();
        spec.faults = vec![true];
        spec.control = vec![true];
        spec.shards = vec![2];
        let report = run_sweep(&spec, 2).unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].requests > 0);
    }
}
