//! Spec files: a line-oriented `key = value` dialect (strict TOML
//! subset, hand-rolled — the environment is offline) plus the
//! canonical writer that defines the sweep fingerprint.
//!
//! Grammar:
//!
//! * one `key = value` pair per line; `#` starts a comment; blank
//!   lines are skipped;
//! * axis values are comma-separated lists (`users = 300, 600`);
//! * storage-tier sets separate multipliers with `:` and sets with
//!   `,`; the word `flat` is the homogeneous set (`storage_tiers =
//!   flat, 1:2:0.5` sweeps homogeneous against three tiers);
//! * booleans are `on`/`off` (or `true`/`false`);
//! * unknown and duplicate keys are errors — a typo must not silently
//!   change the grid.
//!
//! [`write_spec`] renders a [`SweepSpec`] with every key in a fixed
//! order and canonical number formatting; parsing its output yields an
//! equal spec (round-trip), and its bytes are what
//! [`SweepSpec::fingerprint`] hashes — which is why cell seeds cannot
//! depend on the declaration order of the original file.

use std::collections::BTreeSet;

use trimcaching_runtime::FillGranularity;

use super::{PolicyKind, SweepSpec, WorkloadFamily};
use crate::SimError;

/// Every legal spec key, in canonical write order.
const KEYS: [&str; 20] = [
    "name",
    "seed",
    "library_seed",
    "models_per_backbone",
    "duration_s",
    "request_rate_hz",
    "area_side_m",
    "servers_per_km2",
    "demand_classes",
    "regional_grid",
    "mobility_slot_s",
    "users",
    "capacity_gb",
    "storage_tiers",
    "workloads",
    "policies",
    "granularities",
    "control",
    "shards",
    "faults",
];

/// Parses a spec file. Omitted keys keep their [`SweepSpec::smoke`]
/// defaults; the parsed spec is validated before it is returned.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for malformed lines, unknown or
/// duplicate keys, unparsable values, or a spec that fails
/// [`SweepSpec::validate`].
pub fn parse_spec(text: &str) -> Result<SweepSpec, SimError> {
    let mut spec = SweepSpec::smoke();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let bad = |reason: String| -> SimError {
            SimError::InvalidConfig {
                reason: format!("spec line {}: {reason}", lineno + 1),
            }
        };
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(format!("expected 'key = value', got '{line}'")))?;
        let (key, value) = (key.trim(), value.trim());
        if !KEYS.contains(&key) {
            return Err(bad(format!("unknown key '{key}'")));
        }
        if !seen.insert(key.to_string()) {
            return Err(bad(format!("duplicate key '{key}'")));
        }
        apply(&mut spec, key, value).map_err(|e| match e {
            SimError::InvalidConfig { reason } => bad(reason),
            other => other,
        })?;
    }
    spec.validate()?;
    Ok(spec)
}

/// Assigns one parsed value to its spec field.
fn apply(spec: &mut SweepSpec, key: &str, value: &str) -> Result<(), SimError> {
    match key {
        "name" => spec.name = value.to_string(),
        "seed" => spec.seed = parse_scalar(key, value)?,
        "library_seed" => spec.library_seed = parse_scalar(key, value)?,
        "models_per_backbone" => spec.models_per_backbone = parse_scalar(key, value)?,
        "duration_s" => spec.duration_s = parse_scalar(key, value)?,
        "request_rate_hz" => spec.request_rate_hz = parse_scalar(key, value)?,
        "area_side_m" => spec.area_side_m = parse_scalar(key, value)?,
        "servers_per_km2" => spec.servers_per_km2 = parse_scalar(key, value)?,
        "demand_classes" => spec.demand_classes = parse_scalar(key, value)?,
        "regional_grid" => spec.regional_grid = parse_scalar(key, value)?,
        "mobility_slot_s" => spec.mobility_slot_s = parse_scalar(key, value)?,
        "users" => spec.users = parse_list(key, value, parse_scalar)?,
        "capacity_gb" => spec.capacity_gb = parse_list(key, value, parse_scalar)?,
        "storage_tiers" => {
            spec.storage_tiers = parse_list(key, value, tiers_from_string)?;
        }
        "workloads" => {
            spec.workloads = parse_list(key, value, |_, v| WorkloadFamily::parse(v))?;
        }
        "policies" => spec.policies = parse_list(key, value, |_, v| PolicyKind::parse(v))?,
        "granularities" => {
            spec.granularities = parse_list(key, value, granularity_from_string)?;
        }
        "control" => spec.control = parse_list(key, value, parse_bool)?,
        "shards" => spec.shards = parse_list(key, value, parse_scalar)?,
        "faults" => spec.faults = parse_list(key, value, parse_bool)?,
        // The caller already rejected keys outside `KEYS`; keep this an
        // error (not a panic) so the two lists can never desynchronise
        // into a crash.
        other => {
            return Err(SimError::InvalidConfig {
                reason: format!("unknown key '{other}'"),
            })
        }
    }
    Ok(())
}

/// Parses a single scalar with a typed `FromStr`.
fn parse_scalar<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SimError> {
    value.parse().map_err(|_| SimError::InvalidConfig {
        reason: format!("key '{key}': cannot parse '{value}'"),
    })
}

/// Parses a comma-separated list with a per-element parser.
fn parse_list<T>(
    key: &str,
    value: &str,
    element: impl Fn(&str, &str) -> Result<T, SimError>,
) -> Result<Vec<T>, SimError> {
    value
        .split(',')
        .map(|v| element(key, v.trim()))
        .collect::<Result<Vec<_>, _>>()
        .and_then(|list| {
            if list.is_empty() {
                Err(SimError::InvalidConfig {
                    reason: format!("key '{key}': empty list"),
                })
            } else {
                Ok(list)
            }
        })
}

/// Parses an `on`/`off` flag.
fn parse_bool(key: &str, value: &str) -> Result<bool, SimError> {
    match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(SimError::InvalidConfig {
            reason: format!("key '{key}': expected on/off, got '{other}'"),
        }),
    }
}

/// Parses one storage-tier set: `flat` or `:`-separated multipliers.
fn tiers_from_string(key: &str, value: &str) -> Result<Vec<f64>, SimError> {
    if value == "flat" {
        return Ok(Vec::new());
    }
    value
        .split(':')
        .map(|v| parse_scalar::<f64>(key, v.trim()))
        .collect()
}

/// Renders one storage-tier set (`flat` when empty).
pub fn tiers_to_string(tiers: &[f64]) -> String {
    if tiers.is_empty() {
        return "flat".into();
    }
    tiers
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(":")
}

/// Parses a fill granularity name.
fn granularity_from_string(key: &str, value: &str) -> Result<FillGranularity, SimError> {
    match value {
        "block" => Ok(FillGranularity::Block),
        "whole-model" => Ok(FillGranularity::WholeModel),
        other => Err(SimError::InvalidConfig {
            reason: format!("key '{key}': expected block/whole-model, got '{other}'"),
        }),
    }
}

/// Renders a fill granularity name.
pub fn granularity_to_string(granularity: FillGranularity) -> &'static str {
    match granularity {
        FillGranularity::Block => "block",
        FillGranularity::WholeModel => "whole-model",
    }
}

/// Renders an `on`/`off` flag.
pub fn bool_to_string(value: bool) -> &'static str {
    if value {
        "on"
    } else {
        "off"
    }
}

/// Writes the canonical form of a spec: fixed key order, canonical
/// number formatting. These bytes define [`SweepSpec::fingerprint`].
pub fn write_spec(spec: &SweepSpec) -> String {
    fn join<T, F: Fn(&T) -> String>(values: &[T], f: F) -> String {
        values.iter().map(f).collect::<Vec<_>>().join(", ")
    }
    // Built positionally in `KEYS` order; the round-trip test pins the
    // two lists together (a drifted entry would fail to re-parse or
    // fall back to a default and compare unequal).
    let entries: [(&str, String); KEYS.len()] = [
        ("name", spec.name.clone()),
        ("seed", spec.seed.to_string()),
        ("library_seed", spec.library_seed.to_string()),
        ("models_per_backbone", spec.models_per_backbone.to_string()),
        ("duration_s", spec.duration_s.to_string()),
        ("request_rate_hz", spec.request_rate_hz.to_string()),
        ("area_side_m", spec.area_side_m.to_string()),
        ("servers_per_km2", spec.servers_per_km2.to_string()),
        ("demand_classes", spec.demand_classes.to_string()),
        ("regional_grid", spec.regional_grid.to_string()),
        ("mobility_slot_s", spec.mobility_slot_s.to_string()),
        ("users", join(&spec.users, usize::to_string)),
        ("capacity_gb", join(&spec.capacity_gb, f64::to_string)),
        (
            "storage_tiers",
            join(&spec.storage_tiers, |t| tiers_to_string(t)),
        ),
        ("workloads", join(&spec.workloads, |w| w.name().to_string())),
        ("policies", join(&spec.policies, |p| p.name().to_string())),
        (
            "granularities",
            join(&spec.granularities, |g| granularity_to_string(*g).into()),
        ),
        (
            "control",
            join(&spec.control, |b| bool_to_string(*b).into()),
        ),
        ("shards", join(&spec.shards, usize::to_string)),
        ("faults", join(&spec.faults, |b| bool_to_string(*b).into())),
    ];
    let mut out = String::from("# trimcaching sweep spec (canonical form)\n");
    for (key, value) in entries {
        out.push_str(key);
        out.push_str(" = ");
        out.push_str(&value);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_round_trips() {
        let mut spec = SweepSpec::smoke();
        spec.name = "round-trip".into();
        spec.users = vec![100, 250];
        spec.capacity_gb = vec![0.5, 1.25];
        spec.storage_tiers = vec![vec![], vec![1.0, 2.0, 0.5]];
        spec.workloads = vec![WorkloadFamily::FlashCrowd, WorkloadFamily::Regional];
        spec.policies = vec![PolicyKind::Lru, PolicyKind::CostLfu];
        spec.granularities = vec![FillGranularity::Block, FillGranularity::WholeModel];
        spec.control = vec![false, true];
        spec.shards = vec![1, 4];
        spec.faults = vec![false, true];
        let text = write_spec(&spec);
        let parsed = parse_spec(&text).unwrap();
        assert_eq!(parsed, spec);
        // Canonical form is a fixed point: writing the parse re-yields it.
        assert_eq!(write_spec(&parsed), text);
    }

    #[test]
    fn declaration_order_and_comments_do_not_matter() {
        let a = parse_spec("users = 100, 200\npolicies = lru, cost-lfu\n").unwrap();
        let b = parse_spec(
            "# comment\npolicies = lru, cost-lfu  # trailing comment\n\nusers = 100 , 200\n",
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn omitted_keys_default_to_the_smoke_spec() {
        let parsed = parse_spec("shards = 2, 4\n").unwrap();
        let mut expected = SweepSpec::smoke();
        expected.shards = vec![2, 4];
        assert_eq!(parsed, expected);
    }

    #[test]
    fn malformed_specs_are_rejected_with_line_numbers() {
        let e = parse_spec("users 100\n").unwrap_err().to_string();
        assert!(e.contains("line 1"), "{e}");
        let e = parse_spec("nope = 1\n").unwrap_err().to_string();
        assert!(e.contains("unknown key"), "{e}");
        let e = parse_spec("users = 100\nusers = 200\n")
            .unwrap_err()
            .to_string();
        assert!(e.contains("duplicate key"), "{e}");
        let e = parse_spec("users = ten\n").unwrap_err().to_string();
        assert!(e.contains("cannot parse"), "{e}");
        let e = parse_spec("faults = maybe\n").unwrap_err().to_string();
        assert!(e.contains("on/off"), "{e}");
        let e = parse_spec("granularities = byte\n")
            .unwrap_err()
            .to_string();
        assert!(e.contains("block/whole-model"), "{e}");
        // Validation runs on the assembled spec.
        assert!(parse_spec("users = 0\n").is_err());
    }

    #[test]
    fn tier_sets_parse_both_forms() {
        let spec = parse_spec("storage_tiers = flat, 1:2:0.5\n").unwrap();
        assert_eq!(spec.storage_tiers, vec![vec![], vec![1.0, 2.0, 0.5]]);
        assert_eq!(tiers_to_string(&[]), "flat");
        assert_eq!(tiers_to_string(&[1.0, 2.0, 0.5]), "1:2:0.5");
    }
}
