//! Random topology generation reproducing Section VII-A.
//!
//! `K` users and `M` edge servers are dropped uniformly at random over a
//! square area (1 km² by default, 400 m for the Fig. 6 comparison), every
//! edge server gets the same storage capacity `Q`, request probabilities
//! follow a per-user Zipf law, and QoS budgets are uniform in `[0.5, 1]` s.
//! [`TopologyConfig::generate`] assembles one such snapshot as a
//! [`Scenario`]; the Monte-Carlo driver calls it once per topology seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use trimcaching_modellib::ModelLibrary;
use trimcaching_scenario::prelude::*;
use trimcaching_wireless::geometry::DeploymentArea;
use trimcaching_wireless::params::RadioParams;

use crate::SimError;

/// Configuration of one random topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of edge servers `M`.
    pub num_servers: usize,
    /// Number of users `K`.
    pub num_users: usize,
    /// Identical per-server storage capacity `Q`, in gigabytes.
    pub capacity_gb: f64,
    /// Side length of the square deployment area in metres.
    pub area_side_m: f64,
    /// Demand generation parameters.
    pub demand: DemandConfig,
    /// Radio parameters.
    pub radio: RadioParams,
    /// Effective per-transfer edge-to-edge throughput in bits per second.
    ///
    /// The paper provisions 10 Gbps backhaul links between edge servers;
    /// a single model migration does not get the full link in practice
    /// (links are shared by concurrent migrations and background traffic),
    /// and with the full 10 Gbps per transfer the placement location would
    /// barely matter — any cached copy anywhere could be relayed within the
    /// latency budget, flattening the capacity dependence the paper
    /// reports. The default of 1 Gbps effective per-transfer throughput
    /// restores the locality the evaluation exhibits; see DESIGN.md
    /// (substitutions) and EXPERIMENTS.md.
    pub backhaul_rate_bps: f64,
}

impl TopologyConfig {
    /// The default configuration of the paper's main experiments:
    /// `M = 10`, `K = 30`, `Q = 1` GB, 1 km² area.
    pub fn paper_defaults() -> Self {
        Self {
            num_servers: 10,
            num_users: 30,
            capacity_gb: 1.0,
            area_side_m: 1000.0,
            demand: DemandConfig::paper_defaults(),
            radio: RadioParams::paper_defaults(),
            backhaul_rate_bps: 1.0e9,
        }
    }

    /// The reduced configuration of the Fig. 6 running-time comparison:
    /// `M = 2`, `K = 6`, 400 m area.
    pub fn paper_small() -> Self {
        Self {
            num_servers: 2,
            num_users: 6,
            capacity_gb: 0.1,
            area_side_m: 400.0,
            ..Self::paper_defaults()
        }
    }

    /// Sets the number of edge servers.
    pub fn with_servers(mut self, m: usize) -> Self {
        self.num_servers = m;
        self
    }

    /// Sets the number of users.
    pub fn with_users(mut self, k: usize) -> Self {
        self.num_users = k;
        self
    }

    /// Sets the per-server capacity in gigabytes.
    pub fn with_capacity_gb(mut self, q: f64) -> Self {
        self.capacity_gb = q;
        self
    }

    /// Generates the `index`-th random topology for this configuration over
    /// the given model library. The same `(config, library, seed, index)`
    /// always produces the same scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration is invalid or the
    /// scenario cannot be assembled.
    pub fn generate(
        &self,
        library: &ModelLibrary,
        seed: u64,
        index: u64,
    ) -> Result<Scenario, SimError> {
        if self.num_servers == 0 || self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                reason: "a topology needs at least one server and one user".into(),
            });
        }
        if !(self.capacity_gb.is_finite() && self.capacity_gb > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid capacity {} GB", self.capacity_gb),
            });
        }
        if !(self.backhaul_rate_bps.is_finite() && self.backhaul_rate_bps > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid backhaul rate {} bps", self.backhaul_rate_bps),
            });
        }
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        let area = DeploymentArea::new(self.area_side_m).map_err(ScenarioError::from)?;
        let servers: Vec<EdgeServer> = (0..self.num_servers)
            .map(|m| {
                EdgeServer::new(
                    ServerId(m),
                    area.sample_uniform(&mut rng),
                    gigabytes(self.capacity_gb),
                )
            })
            .collect::<Result<_, _>>()?;
        let users = area.sample_uniform_n(self.num_users, &mut rng);
        let demand = self
            .demand
            .generate(self.num_users, library.num_models(), &mut rng)?;
        let scenario = Scenario::builder()
            .library(library.clone())
            .servers(servers)
            .users_at(&users)
            .demand(demand)
            .radio(self.radio)
            .backhaul_rate_bps(self.backhaul_rate_bps)
            .build()?;
        Ok(scenario)
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// City-scale random topologies: edge servers dropped by a homogeneous
/// **Poisson point process** over a large square region (the server count
/// is `Poisson(λ · area)` and positions are uniform given the count),
/// users dropped uniformly. At these scales each user is covered by a
/// handful of servers, which is exactly the regime the coverage-pruned
/// [`trimcaching_scenario::SparseEligibility`] representation targets —
/// the default `repr` is therefore [`EligibilityRepr::Sparse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityScaleConfig {
    /// Side length of the square deployment region in metres.
    pub area_side_m: f64,
    /// Server intensity λ of the Poisson point process, in servers per
    /// square kilometre.
    pub servers_per_km2: f64,
    /// Number of users dropped uniformly over the region.
    pub num_users: usize,
    /// Identical per-server storage capacity `Q`, in gigabytes.
    pub capacity_gb: f64,
    /// Demand generation parameters.
    pub demand: DemandConfig,
    /// Number of clustered demand classes (`None` = dense singleton
    /// demand, one row per user). With `Some(c)` the demand matrices
    /// hold `c` Zipf rows and users are assigned round-robin, so memory
    /// scales with `c × I` instead of `K × I` — the knob that lets a
    /// million-user city build at all.
    pub demand_classes: Option<usize>,
    /// Radio parameters.
    pub radio: RadioParams,
    /// Effective per-transfer edge-to-edge throughput in bits per second
    /// (see [`TopologyConfig::backhaul_rate_bps`]).
    pub backhaul_rate_bps: f64,
    /// Eligibility representation forwarded to the scenario builder.
    pub repr: EligibilityRepr,
    /// Heterogeneous storage tiers: per-server multipliers on
    /// `capacity_gb`, cycled by server index (`server m` gets
    /// `capacity_gb · tiers[m mod tiers.len()]`). `None` keeps the
    /// paper's homogeneous capacity.
    #[serde(default)]
    pub storage_tiers: Option<Vec<f64>>,
    /// Correlated regional popularity: `Some(g)` cuts the area into a
    /// `g × g` grid of regions and gives each region its own clustered
    /// demand class — users request from the Zipf row of the region they
    /// stand in, so neighbours share a profile. Mutually exclusive with
    /// [`CityScaleConfig::demand_classes`].
    #[serde(default)]
    pub regional_grid: Option<usize>,
    /// Commuter user placement: drop users at the *home* anchors of a
    /// [`CommuterFlow`] (western residential band) instead of uniformly,
    /// the static snapshot of a home/work commuting population.
    #[serde(default)]
    pub commuter_homes: bool,
}

impl CityScaleConfig {
    /// A 5 km × 5 km district with 8 servers/km² (≈ 200 servers) and
    /// 5 000 users — large enough that the dense `M × K × I` cube is
    /// wasteful, small enough to iterate on quickly.
    ///
    /// City cells cover an order of magnitude more users than the
    /// paper's 1 km² snapshots (tens instead of ~7), so the presets
    /// lower the activity probability `p_A` to `0.05` — a mostly idle
    /// population — keeping the *active*-user bandwidth share, and hence
    /// the deadline feasibility, at paper levels.
    ///
    /// The effective per-transfer backhaul throughput is likewise scaled
    /// down to 200 Mbps: a metro aggregation network is shared by orders
    /// of magnitude more concurrent migrations than the paper's 10-server
    /// mesh, and at 200 Mbps a ≥ 50 MB model cannot be relayed within the
    /// 0.5–1 s deadlines — requests are served by *covering* servers
    /// only, which is precisely the coverage-pruned regime the sparse
    /// representation exploits (with 1 Gbps relays, distant servers
    /// become eligible for ~¼ of the request classes and the candidate
    /// lists balloon towards `M`).
    pub fn district() -> Self {
        let mut radio = RadioParams::paper_defaults();
        radio.activity_probability = 0.05;
        Self {
            area_side_m: 5_000.0,
            servers_per_km2: 8.0,
            num_users: 5_000,
            capacity_gb: 1.0,
            demand: DemandConfig::paper_defaults(),
            demand_classes: None,
            radio,
            backhaul_rate_bps: 2.0e8,
            repr: EligibilityRepr::Sparse,
            storage_tiers: None,
            regional_grid: None,
            commuter_homes: false,
        }
    }

    /// A 15 km × 15 km city with ≈ 4.4 servers/km² (≈ 1 000 servers) and
    /// 50 000 users — the headline scale the sparse representation
    /// exists for; the dense cube would hold 1.2 G cells.
    pub fn city() -> Self {
        Self {
            area_side_m: 15_000.0,
            servers_per_km2: 4.4,
            num_users: 50_000,
            ..Self::district()
        }
    }

    /// Sets the server intensity in servers per square kilometre.
    pub fn with_servers_per_km2(mut self, lambda: f64) -> Self {
        self.servers_per_km2 = lambda;
        self
    }

    /// Sets the number of users.
    pub fn with_users(mut self, k: usize) -> Self {
        self.num_users = k;
        self
    }

    /// Sets the eligibility representation.
    pub fn with_repr(mut self, repr: EligibilityRepr) -> Self {
        self.repr = repr;
        self
    }

    /// Switches demand generation to `classes` clustered Zipf rows with
    /// round-robin user assignment (memory `classes × I` instead of
    /// `K × I`).
    pub fn with_demand_classes(mut self, classes: usize) -> Self {
        self.demand_classes = Some(classes);
        self
    }

    /// Switches to heterogeneous storage: server `m` gets capacity
    /// `capacity_gb · tiers[m mod tiers.len()]`.
    pub fn with_storage_tiers(mut self, tiers: Vec<f64>) -> Self {
        self.storage_tiers = Some(tiers);
        self
    }

    /// Switches demand generation to correlated regional popularity over
    /// a `grid × grid` partition of the area (one clustered Zipf class
    /// per region, users classed by position).
    pub fn with_regional_grid(mut self, grid: usize) -> Self {
        self.regional_grid = Some(grid);
        self
    }

    /// Drops users at commuter *home* anchors (western residential band)
    /// instead of uniformly over the area.
    pub fn with_commuter_homes(mut self) -> Self {
        self.commuter_homes = true;
        self
    }

    /// Expected number of servers `λ · area`.
    pub fn expected_servers(&self) -> f64 {
        let area_km2 = (self.area_side_m / 1_000.0).powi(2);
        self.servers_per_km2 * area_km2
    }

    /// Generates the `index`-th city topology for this configuration.
    /// The same `(config, library, seed, index)` always produces the same
    /// scenario. At least one server is always placed so the scenario
    /// assembles even when the Poisson draw is zero.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration is invalid or the
    /// scenario cannot be assembled.
    pub fn generate(
        &self,
        library: &ModelLibrary,
        seed: u64,
        index: u64,
    ) -> Result<Scenario, SimError> {
        if self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                reason: "a city topology needs at least one user".into(),
            });
        }
        if !(self.servers_per_km2.is_finite() && self.servers_per_km2 > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid server intensity {} /km²", self.servers_per_km2),
            });
        }
        if !(self.capacity_gb.is_finite() && self.capacity_gb > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid capacity {} GB", self.capacity_gb),
            });
        }
        if !(self.backhaul_rate_bps.is_finite() && self.backhaul_rate_bps > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid backhaul rate {} bps", self.backhaul_rate_bps),
            });
        }
        if let Some(tiers) = &self.storage_tiers {
            if tiers.is_empty() || tiers.iter().any(|&t| !(t.is_finite() && t > 0.0)) {
                return Err(SimError::InvalidConfig {
                    reason: format!("storage tiers must be non-empty and positive: {tiers:?}"),
                });
            }
        }
        if let Some(grid) = self.regional_grid {
            if grid == 0 {
                return Err(SimError::InvalidConfig {
                    reason: "a regional grid needs at least one cell per side".into(),
                });
            }
            if self.demand_classes.is_some() {
                return Err(SimError::InvalidConfig {
                    reason: "regional_grid and demand_classes are mutually exclusive \
                             (both define the user→class map)"
                        .into(),
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        let area = DeploymentArea::new(self.area_side_m).map_err(ScenarioError::from)?;
        let num_servers = sample_poisson(self.expected_servers(), &mut rng).max(1);
        let servers: Vec<EdgeServer> = (0..num_servers)
            .map(|m| {
                let tier = self
                    .storage_tiers
                    .as_ref()
                    .map_or(1.0, |tiers| tiers[m % tiers.len()]);
                EdgeServer::new(
                    ServerId(m),
                    area.sample_uniform(&mut rng),
                    gigabytes(self.capacity_gb * tier),
                )
            })
            .collect::<Result<_, _>>()?;
        let users = if self.commuter_homes {
            let commuter_seed: u64 = rng.gen();
            CommuterFlow::new(self.num_users, area, 1.0, commuter_seed)?
                .homes()
                .to_vec()
        } else {
            area.sample_uniform_n(self.num_users, &mut rng)
        };
        let demand = match (self.regional_grid, self.demand_classes) {
            (Some(grid), _) => {
                // One clustered class per grid region; a user requests
                // from the Zipf row of the region they stand in.
                let cell = self.area_side_m / grid as f64;
                let user_class = users
                    .iter()
                    .map(|p| {
                        let gx = ((p.x / cell) as usize).min(grid - 1);
                        let gy = ((p.y / cell) as usize).min(grid - 1);
                        (gy * grid + gx) as u32
                    })
                    .collect();
                self.demand.generate_clustered_mapped(
                    library.num_models(),
                    grid * grid,
                    user_class,
                    &mut rng,
                )?
            }
            (None, Some(classes)) => self.demand.generate_clustered(
                self.num_users,
                library.num_models(),
                classes,
                &mut rng,
            )?,
            (None, None) => self
                .demand
                .generate(self.num_users, library.num_models(), &mut rng)?,
        };
        let scenario = Scenario::builder()
            .library(library.clone())
            .servers(servers)
            .users_at(&users)
            .demand(demand)
            .radio(self.radio)
            .backhaul_rate_bps(self.backhaul_rate_bps)
            .eligibility_repr(self.repr)
            .build()?;
        Ok(scenario)
    }
}

impl Default for CityScaleConfig {
    fn default() -> Self {
        Self::district()
    }
}

/// Draws `Poisson(lambda)` with Knuth's product method, chunked so the
/// running product `e^{-λ'}` never underflows for large intensities
/// (`Poisson(λ) = Σ Poisson(λ / n)` over `n` independent chunks).
fn sample_poisson<R: rand::Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    const CHUNK: f64 = 32.0;
    let mut remaining = lambda.max(0.0);
    let mut count = 0usize;
    while remaining > 0.0 {
        let step = remaining.min(CHUNK);
        remaining -= step;
        let threshold = (-step).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        while product > threshold {
            count += 1;
            product *= rng.gen_range(0.0..1.0);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimcaching_modellib::builders::SpecialCaseBuilder;

    fn library() -> ModelLibrary {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(3)
            .build(1)
    }

    #[test]
    fn paper_defaults_match_section_vii() {
        let cfg = TopologyConfig::paper_defaults();
        assert_eq!(cfg.num_servers, 10);
        assert_eq!(cfg.num_users, 30);
        assert_eq!(cfg.capacity_gb, 1.0);
        assert_eq!(cfg.area_side_m, 1000.0);
        let small = TopologyConfig::paper_small();
        assert_eq!(small.num_servers, 2);
        assert_eq!(small.num_users, 6);
        assert_eq!(small.area_side_m, 400.0);
        assert_eq!(TopologyConfig::default(), TopologyConfig::paper_defaults());
    }

    #[test]
    fn generation_is_deterministic_and_correctly_sized() {
        let lib = library();
        let cfg = TopologyConfig::paper_defaults()
            .with_servers(4)
            .with_users(8)
            .with_capacity_gb(0.75);
        let a = cfg.generate(&lib, 42, 0).unwrap();
        let b = cfg.generate(&lib, 42, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_servers(), 4);
        assert_eq!(a.num_users(), 8);
        assert_eq!(a.capacity_bytes(ServerId(0)).unwrap(), 750_000_000);
        // Different topology indices and seeds give different layouts.
        let c = cfg.generate(&lib, 42, 1).unwrap();
        assert_ne!(a, c);
        let d = cfg.generate(&lib, 43, 0).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn city_scale_generation_is_deterministic_and_sparse() {
        let lib = library();
        // A small "city" so the test stays fast: 2 km², ~24 servers.
        let cfg = CityScaleConfig::district()
            .with_servers_per_km2(6.0)
            .with_users(300);
        let cfg = CityScaleConfig {
            area_side_m: 2_000.0,
            ..cfg
        };
        assert!((cfg.expected_servers() - 24.0).abs() < 1e-9);
        let a = cfg.generate(&lib, 7, 0).unwrap();
        let b = cfg.generate(&lib, 7, 0).unwrap();
        assert_eq!(a, b);
        assert!(a.num_servers() >= 1);
        assert_eq!(a.num_users(), 300);
        assert!(a.eligibility().is_sparse());
        // Coverage is thin: each user sees a handful of servers, not all.
        assert!(a.coverage().coverage_density() < 0.5);
        // Different indices give different layouts.
        let c = cfg.generate(&lib, 7, 1).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_sampler_matches_the_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 400;
            let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            // Std error is sqrt(lambda / n); allow five sigmas.
            let tolerance = 5.0 * (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < tolerance,
                "lambda {lambda}: empirical mean {mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn invalid_city_configurations_are_rejected() {
        let lib = library();
        assert!(CityScaleConfig::district()
            .with_users(0)
            .generate(&lib, 1, 0)
            .is_err());
        assert!(CityScaleConfig::district()
            .with_servers_per_km2(0.0)
            .generate(&lib, 1, 0)
            .is_err());
        let mut cfg = CityScaleConfig::district();
        cfg.capacity_gb = f64::NAN;
        assert!(cfg.generate(&lib, 1, 0).is_err());
        let mut cfg = CityScaleConfig::district();
        cfg.backhaul_rate_bps = -1.0;
        assert!(cfg.generate(&lib, 1, 0).is_err());
        // The city preset is the documented headline scale.
        let city = CityScaleConfig::city();
        assert_eq!(city.num_users, 50_000);
        assert!(city.expected_servers() > 900.0);
        assert_eq!(CityScaleConfig::default(), CityScaleConfig::district());
    }

    #[test]
    fn storage_tiers_cycle_by_server_index() {
        let lib = library();
        let mut cfg = CityScaleConfig::district()
            .with_users(50)
            .with_storage_tiers(vec![1.0, 2.0, 0.5]);
        cfg.area_side_m = 1_500.0;
        let scenario = cfg.generate(&lib, 3, 0).unwrap();
        let base = 1_000_000_000u64; // capacity_gb = 1.0
        for m in 0..scenario.num_servers() {
            let expected = match m % 3 {
                0 => base,
                1 => 2 * base,
                _ => base / 2,
            };
            assert_eq!(scenario.capacity_bytes(ServerId(m)).unwrap(), expected);
        }
        // Tiers never change where servers and users land.
        let mut flat = cfg.clone();
        flat.storage_tiers = None;
        let plain = flat.generate(&lib, 3, 0).unwrap();
        assert_eq!(scenario.num_servers(), plain.num_servers());
        assert_eq!(scenario.users(), plain.users());
        // Degenerate tiers are rejected.
        assert!(cfg
            .clone()
            .with_storage_tiers(vec![])
            .generate(&lib, 3, 0)
            .is_err());
        assert!(cfg
            .with_storage_tiers(vec![1.0, 0.0])
            .generate(&lib, 3, 0)
            .is_err());
    }

    #[test]
    fn regional_grid_classes_users_by_position() {
        let lib = library();
        let mut cfg = CityScaleConfig::district()
            .with_users(200)
            .with_regional_grid(2);
        cfg.area_side_m = 2_000.0;
        let scenario = cfg.generate(&lib, 9, 0).unwrap();
        let classes = scenario.demand().user_classes().expect("clustered demand");
        assert_eq!(scenario.demand().num_classes(), 4);
        for (k, u) in scenario.users().iter().enumerate() {
            let p = u.position();
            let gx = ((p.x / 1_000.0) as usize).min(1);
            let gy = ((p.y / 1_000.0) as usize).min(1);
            assert_eq!(classes[k], (gy * 2 + gx) as u32, "user {k} at {p:?}");
        }
        // Same config, same seed: deterministic.
        assert_eq!(scenario, cfg.generate(&lib, 9, 0).unwrap());
        // Degenerate / conflicting grids are rejected.
        assert!(cfg
            .clone()
            .with_regional_grid(0)
            .generate(&lib, 9, 0)
            .is_err());
        assert!(cfg.with_demand_classes(8).generate(&lib, 9, 0).is_err());
    }

    #[test]
    fn commuter_homes_cluster_users_in_the_residential_band() {
        let lib = library();
        let mut cfg = CityScaleConfig::district()
            .with_users(120)
            .with_commuter_homes();
        cfg.area_side_m = 2_000.0;
        let scenario = cfg.generate(&lib, 5, 0).unwrap();
        for u in scenario.users() {
            let p = u.position();
            assert!(
                p.x <= 0.4 * 2_000.0,
                "commuter home outside the residential band: {p:?}"
            );
        }
        assert_eq!(scenario, cfg.generate(&lib, 5, 0).unwrap());
        // Uniform placement covers the east half too; commuter homes don't.
        let mut uniform = cfg.clone();
        uniform.commuter_homes = false;
        let spread = uniform.generate(&lib, 5, 0).unwrap();
        assert!(spread
            .users()
            .iter()
            .any(|u| u.position().x > 0.4 * 2_000.0));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let lib = library();
        assert!(TopologyConfig::paper_defaults()
            .with_servers(0)
            .generate(&lib, 1, 0)
            .is_err());
        assert!(TopologyConfig::paper_defaults()
            .with_users(0)
            .generate(&lib, 1, 0)
            .is_err());
        assert!(TopologyConfig::paper_defaults()
            .with_capacity_gb(0.0)
            .generate(&lib, 1, 0)
            .is_err());
        let mut cfg = TopologyConfig::paper_defaults();
        cfg.area_side_m = -5.0;
        assert!(cfg.generate(&lib, 1, 0).is_err());
        let mut cfg = TopologyConfig::paper_defaults();
        cfg.backhaul_rate_bps = 0.0;
        assert!(cfg.generate(&lib, 1, 0).is_err());
    }
}
