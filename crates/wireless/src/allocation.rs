//! Per-user bandwidth and power allocation.
//!
//! Section VII-A of the paper allocates to each associated user of edge
//! server `m` the expected per-user share
//!
//! ```text
//! B̄_{m,k} = B / (p_A · |K_m|),    P̄_{m,k} = P / (p_A · |K_m|)
//! ```
//!
//! i.e. the total bandwidth/power divided by the *expected number of active
//! users* of that server. [`PerUserAllocation`] computes and caches those
//! shares for a topology described by a [`CoverageMap`].

use serde::{Deserialize, Serialize};

use crate::coverage::CoverageMap;
use crate::error::WirelessError;
use crate::params::RadioParams;

/// The expected bandwidth/power share a given server dedicates to each of
/// its associated users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerShare {
    /// Expected per-user bandwidth in Hz (`B̄_{m,k}`).
    pub bandwidth_hz: f64,
    /// Expected per-user transmit power in Watts (`P̄_{m,k}`).
    pub power_w: f64,
    /// The divisor used, i.e. the expected number of active users
    /// (at least 1).
    pub expected_active_users: f64,
}

/// Per-server expected allocation for every edge server in a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerUserAllocation {
    shares: Vec<ServerShare>,
}

impl PerUserAllocation {
    /// Computes the per-user allocation for every server in `coverage`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if `params` fails
    /// validation.
    pub fn compute(coverage: &CoverageMap, params: &RadioParams) -> Result<Self, WirelessError> {
        params.validate()?;
        let shares = (0..coverage.num_servers())
            .map(|m| {
                let active = coverage.expected_active_users(m, params.activity_probability);
                ServerShare {
                    bandwidth_hz: params.total_bandwidth_hz / active,
                    power_w: params.total_power_w() / active,
                    expected_active_users: active,
                }
            })
            .collect();
        Ok(Self { shares })
    }

    /// Number of servers covered by this allocation.
    pub fn num_servers(&self) -> usize {
        self.shares.len()
    }

    /// Recomputes the shares of the given servers against an updated
    /// coverage relation and returns, ascending, the servers whose share
    /// actually changed. A server whose covered-user count moved but
    /// whose *expected active* count did not (the floor of one active
    /// user absorbs small cells) keeps its share bit-identical and is
    /// not reported.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if `params` fails
    /// validation and [`WirelessError::IndexOutOfRange`] for an unknown
    /// server; the allocation is only modified for servers processed
    /// before the error.
    pub fn update_servers<I>(
        &mut self,
        coverage: &CoverageMap,
        params: &RadioParams,
        servers: I,
    ) -> Result<Vec<usize>, WirelessError>
    where
        I: IntoIterator<Item = usize>,
    {
        params.validate()?;
        let mut changed = Vec::new();
        for m in servers {
            if m >= self.shares.len() {
                return Err(WirelessError::IndexOutOfRange {
                    entity: "server",
                    index: m,
                    len: self.shares.len(),
                });
            }
            let active = coverage.expected_active_users(m, params.activity_probability);
            let fresh = ServerShare {
                bandwidth_hz: params.total_bandwidth_hz / active,
                power_w: params.total_power_w() / active,
                expected_active_users: active,
            };
            if fresh != self.shares[m] {
                self.shares[m] = fresh;
                changed.push(m);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        Ok(changed)
    }

    /// The share server `m` dedicates to each associated user.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if `m` is out of range.
    pub fn share(&self, m: usize) -> Result<ServerShare, WirelessError> {
        self.shares
            .get(m)
            .copied()
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.shares.len(),
            })
    }

    /// Iterates over `(server_index, share)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ServerShare)> + '_ {
        self.shares.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn topology(users: usize) -> CoverageMap {
        // One server at the origin covering `users` users placed nearby.
        let server = vec![Point::new(0.0, 0.0)];
        let user_points: Vec<Point> = (0..users)
            .map(|i| Point::new(10.0 + i as f64, 0.0))
            .collect();
        CoverageMap::build(&user_points, &server, 275.0).unwrap()
    }

    #[test]
    fn share_divides_by_expected_active_users() {
        let params = RadioParams::paper_defaults();
        let coverage = topology(10);
        let alloc = PerUserAllocation::compute(&coverage, &params).unwrap();
        let share = alloc.share(0).unwrap();
        // 10 users with activity 0.5 -> 5 expected active users.
        assert_eq!(share.expected_active_users, 5.0);
        assert!((share.bandwidth_hz - params.total_bandwidth_hz / 5.0).abs() < 1e-6);
        assert!((share.power_w - params.total_power_w() / 5.0).abs() < 1e-9);
    }

    #[test]
    fn lightly_loaded_server_grants_full_resources() {
        let params = RadioParams::paper_defaults();
        let coverage = topology(1);
        let alloc = PerUserAllocation::compute(&coverage, &params).unwrap();
        let share = alloc.share(0).unwrap();
        // One user with activity 0.5 would give 0.5 expected active users;
        // the floor of 1 active user applies.
        assert_eq!(share.expected_active_users, 1.0);
        assert_eq!(share.bandwidth_hz, params.total_bandwidth_hz);
    }

    #[test]
    fn more_users_means_smaller_shares() {
        let params = RadioParams::paper_defaults();
        let light = PerUserAllocation::compute(&topology(4), &params).unwrap();
        let heavy = PerUserAllocation::compute(&topology(40), &params).unwrap();
        assert!(light.share(0).unwrap().bandwidth_hz > heavy.share(0).unwrap().bandwidth_hz);
        assert!(light.share(0).unwrap().power_w > heavy.share(0).unwrap().power_w);
    }

    #[test]
    fn out_of_range_server_errors() {
        let params = RadioParams::paper_defaults();
        let alloc = PerUserAllocation::compute(&topology(2), &params).unwrap();
        assert_eq!(alloc.num_servers(), 1);
        assert!(alloc.share(1).is_err());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let bad = RadioParams {
            total_bandwidth_hz: -1.0,
            ..RadioParams::paper_defaults()
        };
        assert!(PerUserAllocation::compute(&topology(2), &bad).is_err());
    }

    #[test]
    fn update_servers_reports_only_real_share_changes() {
        let params = RadioParams::paper_defaults();
        let servers = vec![Point::new(0.0, 0.0), Point::new(600.0, 0.0)];
        let users: Vec<Point> = (0..6).map(|i| Point::new(5.0 + i as f64, 0.0)).collect();
        let mut coverage = CoverageMap::build(&users, &servers, 275.0).unwrap();
        let mut alloc = PerUserAllocation::compute(&coverage, &params).unwrap();
        // Move one user from server 0's cell to server 1's: both counts
        // change (6 -> 5 and 0 -> 1), but server 1 stays at the one-active
        // floor (0.5 * 1 < 1), so only server 0's share changes.
        coverage
            .apply_user_moves(&[(0, Point::new(610.0, 0.0))])
            .unwrap();
        let changed = alloc
            .update_servers(&coverage, &params, [0usize, 1])
            .unwrap();
        assert_eq!(changed, vec![0]);
        let rebuilt = PerUserAllocation::compute(&coverage, &params).unwrap();
        assert_eq!(alloc, rebuilt);
        // A second pass with no coverage change reports nothing.
        assert!(alloc
            .update_servers(&coverage, &params, [0usize, 1])
            .unwrap()
            .is_empty());
        // Unknown servers error.
        assert!(alloc.update_servers(&coverage, &params, [7usize]).is_err());
    }

    #[test]
    fn iter_yields_all_servers() {
        let params = RadioParams::paper_defaults();
        let servers = vec![Point::new(0.0, 0.0), Point::new(600.0, 0.0)];
        let users = vec![Point::new(5.0, 0.0), Point::new(610.0, 0.0)];
        let coverage = CoverageMap::build(&users, &servers, 275.0).unwrap();
        let alloc = PerUserAllocation::compute(&coverage, &params).unwrap();
        let collected: Vec<_> = alloc.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, 0);
        assert_eq!(collected[1].0, 1);
    }
}
