//! Edge-to-edge backhaul links.
//!
//! The paper assumes all edge servers are interconnected and that the
//! transmission rate between any two servers is a constant `C_{m,m'}`
//! (10 Gbps in the evaluation). [`Backhaul`] models that fully connected
//! mesh and also supports per-link overrides so ablation experiments can
//! study heterogeneous backhauls.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;

/// The edge-to-edge backhaul of a topology with `M` servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Backhaul {
    num_servers: usize,
    default_rate_bps: f64,
    /// Overrides for specific ordered pairs `(from, to)`. Ordered so
    /// that any future iteration (serialisation, link sweeps) visits
    /// links in a deterministic order.
    overrides: BTreeMap<(usize, usize), f64>,
}

impl Backhaul {
    /// Creates a fully connected backhaul where every link runs at
    /// `default_rate_bps`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if the rate is not
    /// strictly positive and finite.
    pub fn uniform(num_servers: usize, default_rate_bps: f64) -> Result<Self, WirelessError> {
        if !(default_rate_bps.is_finite() && default_rate_bps > 0.0) {
            return Err(WirelessError::InvalidParameter {
                name: "default_rate_bps",
                value: default_rate_bps,
            });
        }
        Ok(Self {
            num_servers,
            default_rate_bps,
            overrides: BTreeMap::new(),
        })
    }

    /// The 10 Gbps mesh used in the paper's evaluation.
    pub fn paper_default(num_servers: usize) -> Self {
        // Same construction as `uniform(num_servers, 10.0e9)`, which can
        // only reject non-finite or non-positive rates — built directly
        // so the constant-rate path has no panic machinery at all.
        Self {
            num_servers,
            default_rate_bps: 10.0e9,
            overrides: BTreeMap::new(),
        }
    }

    /// Number of edge servers connected by this backhaul.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The default (mesh-wide) link rate in bits per second.
    pub fn default_rate_bps(&self) -> f64 {
        self.default_rate_bps
    }

    /// Whether any per-link rate override is installed. A mesh without
    /// overrides is *uniform*: every inter-server link runs at
    /// [`Self::default_rate_bps`], which lets eligibility builders decide
    /// all non-covering servers of a request with a single probe.
    pub fn has_overrides(&self) -> bool {
        !self.overrides.is_empty()
    }

    /// Overrides the rate of the ordered link `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidLink`] if the endpoints coincide or
    /// are out of range, and [`WirelessError::InvalidParameter`] if the rate
    /// is not strictly positive and finite.
    pub fn set_link_rate(
        &mut self,
        from: usize,
        to: usize,
        rate_bps: f64,
    ) -> Result<(), WirelessError> {
        if from == to || from >= self.num_servers || to >= self.num_servers {
            return Err(WirelessError::InvalidLink {
                from,
                to,
                servers: self.num_servers,
            });
        }
        if !(rate_bps.is_finite() && rate_bps > 0.0) {
            return Err(WirelessError::InvalidParameter {
                name: "rate_bps",
                value: rate_bps,
            });
        }
        self.overrides.insert((from, to), rate_bps);
        Ok(())
    }

    /// The rate of the ordered link `from -> to` in bits per second.
    ///
    /// Transferring from a server to itself takes no time; this returns
    /// `f64::INFINITY` in that case so that `size / rate` evaluates to zero
    /// transfer latency.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidLink`] if an endpoint is out of
    /// range.
    pub fn rate_bps(&self, from: usize, to: usize) -> Result<f64, WirelessError> {
        if from >= self.num_servers || to >= self.num_servers {
            return Err(WirelessError::InvalidLink {
                from,
                to,
                servers: self.num_servers,
            });
        }
        if from == to {
            return Ok(f64::INFINITY);
        }
        Ok(self
            .overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_rate_bps))
    }

    /// Time in seconds to transfer `bytes` over the link `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidLink`] if an endpoint is out of
    /// range.
    pub fn transfer_latency_s(
        &self,
        from: usize,
        to: usize,
        bytes: u64,
    ) -> Result<f64, WirelessError> {
        let rate = self.rate_bps(from, to)?;
        if rate.is_infinite() {
            return Ok(0.0);
        }
        Ok(bytes as f64 * 8.0 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_has_same_rate_everywhere() {
        let bh = Backhaul::uniform(4, 10.0e9).unwrap();
        for from in 0..4 {
            for to in 0..4 {
                let r = bh.rate_bps(from, to).unwrap();
                if from == to {
                    assert!(r.is_infinite());
                } else {
                    assert_eq!(r, 10.0e9);
                }
            }
        }
        assert_eq!(bh.num_servers(), 4);
        assert_eq!(bh.default_rate_bps(), 10.0e9);
    }

    #[test]
    fn paper_default_is_ten_gbps() {
        let bh = Backhaul::paper_default(6);
        assert_eq!(bh.rate_bps(0, 5).unwrap(), 10.0e9);
    }

    #[test]
    fn self_transfer_is_free() {
        let bh = Backhaul::paper_default(3);
        assert_eq!(bh.transfer_latency_s(2, 2, 1_000_000_000).unwrap(), 0.0);
    }

    #[test]
    fn transfer_latency_matches_rate() {
        let bh = Backhaul::uniform(2, 8.0e9).unwrap();
        // 1 GB over 8 Gbps = 1 second.
        let latency = bh.transfer_latency_s(0, 1, 1_000_000_000).unwrap();
        assert!((latency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overrides_apply_to_one_direction_only() {
        let mut bh = Backhaul::uniform(3, 10.0e9).unwrap();
        bh.set_link_rate(0, 1, 1.0e9).unwrap();
        assert_eq!(bh.rate_bps(0, 1).unwrap(), 1.0e9);
        assert_eq!(bh.rate_bps(1, 0).unwrap(), 10.0e9);
    }

    #[test]
    fn invalid_links_and_rates_are_rejected() {
        let mut bh = Backhaul::uniform(3, 10.0e9).unwrap();
        assert!(bh.set_link_rate(0, 0, 1.0e9).is_err());
        assert!(bh.set_link_rate(0, 9, 1.0e9).is_err());
        assert!(bh.set_link_rate(0, 1, 0.0).is_err());
        assert!(bh.rate_bps(0, 7).is_err());
        assert!(bh.transfer_latency_s(7, 0, 10).is_err());
        assert!(Backhaul::uniform(3, -1.0).is_err());
        assert!(Backhaul::uniform(3, f64::NAN).is_err());
    }
}
