//! Downlink rate model of Eq. (1) and Rayleigh small-scale fading.
//!
//! The placement decision in the paper is made with the *expected* rate
//!
//! ```text
//! C̄_{m,k} = B̄_{m,k} · log2(1 + P̄_{m,k} · γ₀ · d_{m,k}^{-α₀} / (n₀ · B̄_{m,k}))
//! ```
//!
//! while the achieved cache-hit ratio is then evaluated over ~10³ Rayleigh
//! fading realisations (Section VII-A): the instantaneous channel gain is
//! the expected power-law gain multiplied by an exponentially distributed
//! unit-mean fading factor `|h|²`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::params::RadioParams;
use crate::pathloss::{PathLossModel, PowerLawPathLoss};

/// Shannon rate in bits/s for an allocation of `bandwidth_hz` and
/// `power_w`, a link distance `distance_m`, and the power-law path loss /
/// noise parameters in `params` (Eq. (1) of the paper).
///
/// Returns `0.0` when the bandwidth is zero (no allocation ⇒ no rate).
///
/// ```
/// use trimcaching_wireless::{channel::expected_rate_bps, params::RadioParams};
/// let p = RadioParams::paper_defaults();
/// let near = expected_rate_bps(p.total_bandwidth_hz, p.total_power_w(), 50.0, &p);
/// let far = expected_rate_bps(p.total_bandwidth_hz, p.total_power_w(), 250.0, &p);
/// assert!(near > far);
/// ```
pub fn expected_rate_bps(
    bandwidth_hz: f64,
    power_w: f64,
    distance_m: f64,
    params: &RadioParams,
) -> f64 {
    rate_with_fading_bps(bandwidth_hz, power_w, distance_m, 1.0, params)
}

/// Shannon rate in bits/s with an explicit small-scale fading power gain
/// `fading_gain` (`|h|²`, unit mean for Rayleigh fading).
///
/// `fading_gain = 1.0` recovers [`expected_rate_bps`]; drawing the gain from
/// [`RayleighFading`] produces one channel realisation.
pub fn rate_with_fading_bps(
    bandwidth_hz: f64,
    power_w: f64,
    distance_m: f64,
    fading_gain: f64,
    params: &RadioParams,
) -> f64 {
    RateContext::new(bandwidth_hz, power_w, params).rate_bps(distance_m, fading_gain)
}

/// Per-allocation rate computation context: hoists the params-derived
/// constants (path-loss model, noise power for the given bandwidth) out
/// of per-user rate loops, where recomputing `10^{N₀/10}` per link would
/// dominate. [`RateContext::rate_bps`] evaluates the exact expression of
/// [`rate_with_fading_bps`], so batched and point computations are
/// bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct RateContext {
    bandwidth_hz: f64,
    power_w: f64,
    noise_w: f64,
    pathloss: PowerLawPathLoss,
}

impl RateContext {
    /// Precomputes the constants of one `(bandwidth, power)` share.
    pub fn new(bandwidth_hz: f64, power_w: f64, params: &RadioParams) -> Self {
        Self {
            bandwidth_hz,
            power_w,
            noise_w: params.noise_w_per_hz() * bandwidth_hz,
            pathloss: PowerLawPathLoss::from_params(params),
        }
    }

    /// The achievable rate at `distance_m` under `fading_gain`.
    pub fn rate_bps(&self, distance_m: f64, fading_gain: f64) -> f64 {
        if self.bandwidth_hz <= 0.0 || self.power_w <= 0.0 {
            return 0.0;
        }
        let gain = self.pathloss.gain(distance_m) * fading_gain.max(0.0);
        let snr = self.power_w * gain / self.noise_w;
        self.bandwidth_hz * (1.0 + snr).log2()
    }
}

/// Signal-to-noise ratio (linear) for the given allocation and distance.
pub fn snr_linear(bandwidth_hz: f64, power_w: f64, distance_m: f64, params: &RadioParams) -> f64 {
    if bandwidth_hz <= 0.0 {
        return 0.0;
    }
    let pl = PowerLawPathLoss::from_params(params);
    power_w * pl.gain(distance_m) / (params.noise_w_per_hz() * bandwidth_hz)
}

/// A small-scale fading process: draws the instantaneous channel *power*
/// gain `|h|²` for one realisation.
pub trait Fading: std::fmt::Debug {
    /// Draws one channel power gain. The gain must be non-negative; a
    /// unit-mean process leaves the expected rate unchanged on average.
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Rayleigh fading: the amplitude is Rayleigh distributed, so the power gain
/// `|h|²` is exponentially distributed with the configured mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RayleighFading {
    mean_power_gain: f64,
}

impl RayleighFading {
    /// Unit-mean Rayleigh fading, the configuration used by the paper.
    pub fn unit() -> Self {
        Self {
            mean_power_gain: 1.0,
        }
    }

    /// Rayleigh fading with a custom mean power gain.
    ///
    /// # Panics
    ///
    /// Panics if `mean_power_gain` is not strictly positive and finite.
    pub fn with_mean(mean_power_gain: f64) -> Self {
        assert!(
            mean_power_gain.is_finite() && mean_power_gain > 0.0,
            "mean power gain must be positive"
        );
        Self { mean_power_gain }
    }

    /// The mean of the power-gain distribution.
    pub fn mean_power_gain(&self) -> f64 {
        self.mean_power_gain
    }
}

impl Default for RayleighFading {
    fn default() -> Self {
        Self::unit()
    }
}

impl Fading for RayleighFading {
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // |h|^2 ~ Exp(1/mean): inverse-CDF sampling. `gen::<f64>()` is in
        // [0, 1); use 1 - u to avoid ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() * self.mean_power_gain
    }
}

/// Deterministic "no fading" process (always returns gain 1).
///
/// Useful in tests and in experiments that isolate placement quality from
/// channel randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoFading;

impl Fading for NoFading {
    fn sample_power_gain<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> RadioParams {
        RadioParams::paper_defaults()
    }

    #[test]
    fn rate_is_zero_without_bandwidth_or_power() {
        let p = params();
        assert_eq!(expected_rate_bps(0.0, 1.0, 100.0, &p), 0.0);
        assert_eq!(expected_rate_bps(1.0e6, 0.0, 100.0, &p), 0.0);
        assert_eq!(expected_rate_bps(-1.0, 1.0, 100.0, &p), 0.0);
    }

    #[test]
    fn rate_decreases_with_distance() {
        let p = params();
        let bw = p.total_bandwidth_hz;
        let pw = p.total_power_w();
        let mut prev = f64::INFINITY;
        for d in [10.0, 50.0, 100.0, 200.0, 275.0, 500.0] {
            let r = expected_rate_bps(bw, pw, d, &p);
            assert!(r > 0.0 && r < prev);
            prev = r;
        }
    }

    #[test]
    fn rate_increases_with_power() {
        let p = params();
        let bw = 40.0e6;
        let r1 = expected_rate_bps(bw, 1.0, 200.0, &p);
        let r2 = expected_rate_bps(bw, 10.0, 200.0, &p);
        assert!(r2 > r1);
    }

    #[test]
    fn paper_scale_rate_is_plausible_for_model_downloading() {
        // With the paper parameters, a user at ~150 m sharing the server
        // with ~2 active users should get hundreds of Mbps — enough to
        // download a ~100 MB model within a second, which is exactly the
        // regime the evaluation explores.
        let p = params();
        let share = 2.0;
        let r = expected_rate_bps(
            p.total_bandwidth_hz / share,
            p.total_power_w() / share,
            150.0,
            &p,
        );
        assert!(r > 100.0e6, "rate {r} too low for the paper's regime");
        assert!(r < 10.0e9, "rate {r} implausibly high");
    }

    #[test]
    fn fading_rate_matches_expected_rate_at_unit_gain() {
        let p = params();
        let r1 = expected_rate_bps(1.0e6, 1.0, 100.0, &p);
        let r2 = rate_with_fading_bps(1.0e6, 1.0, 100.0, 1.0, &p);
        assert_eq!(r1, r2);
    }

    #[test]
    fn negative_fading_gain_is_clamped() {
        let p = params();
        assert_eq!(rate_with_fading_bps(1.0e6, 1.0, 100.0, -3.0, &p), 0.0);
    }

    #[test]
    fn snr_scales_linearly_with_power() {
        let p = params();
        let s1 = snr_linear(1.0e6, 1.0, 100.0, &p);
        let s2 = snr_linear(1.0e6, 2.0, 100.0, &p);
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
        assert_eq!(snr_linear(0.0, 1.0, 100.0, &p), 0.0);
    }

    #[test]
    fn rayleigh_power_gain_has_unit_mean() {
        let fading = RayleighFading::unit();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| fading.sample_power_gain(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "empirical mean {mean}");
    }

    #[test]
    fn rayleigh_gains_are_nonnegative() {
        let fading = RayleighFading::with_mean(2.5);
        assert_eq!(fading.mean_power_gain(), 2.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(fading.sample_power_gain(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "mean power gain")]
    fn rayleigh_rejects_nonpositive_mean() {
        let _ = RayleighFading::with_mean(0.0);
    }

    #[test]
    fn no_fading_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoFading.sample_power_gain(&mut rng), 1.0);
    }

    #[test]
    fn average_fading_rate_is_close_to_but_below_expected_rate() {
        // By Jensen's inequality E[log(1 + SNR·h)] <= log(1 + SNR·E[h]),
        // so the fading-averaged rate must not exceed the expected-gain rate.
        let p = params();
        let fading = RayleighFading::unit();
        let mut rng = StdRng::seed_from_u64(5);
        let bw = 10.0e6;
        let pw = 1.0;
        let d = 150.0;
        let n = 20_000;
        let avg: f64 = (0..n)
            .map(|_| rate_with_fading_bps(bw, pw, d, fading.sample_power_gain(&mut rng), &p))
            .sum::<f64>()
            / n as f64;
        let nominal = expected_rate_bps(bw, pw, d, &p);
        assert!(avg <= nominal);
        assert!(avg > 0.5 * nominal, "avg {avg} vs nominal {nominal}");
    }
}
