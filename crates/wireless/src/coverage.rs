//! Coverage and association between users and edge servers.
//!
//! A user `k` is covered by edge server `m` when their distance is at most
//! the coverage radius (275 m in the paper). `M_k` denotes the set of edge
//! servers covering user `k` and `K_m` the set of users associated with
//! server `m`; both are precomputed by [`CoverageMap`].

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::geometry::Point;

/// Summary of one incremental [`CoverageMap::apply_user_moves`] update.
///
/// The delta names the users whose position changed and the servers whose
/// coverage relation was *touched* — every server that covered a moved
/// user before or after the move (its member set, its members' distances,
/// or both may have changed). Downstream layers use it to re-derive only
/// the affected rows of the allocation, rate and eligibility state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageDelta {
    /// Users whose position changed, ascending and deduplicated.
    moved_users: Vec<usize>,
    /// Touched server indices, ascending and deduplicated.
    touched_servers: Vec<usize>,
}

impl CoverageDelta {
    /// Users whose position changed, ascending.
    pub fn moved_users(&self) -> &[usize] {
        &self.moved_users
    }

    /// Touched server indices, ascending.
    pub fn touched_servers(&self) -> &[usize] {
        &self.touched_servers
    }

    /// Whether the update changed nothing.
    pub fn is_empty(&self) -> bool {
        self.moved_users.is_empty()
    }
}

/// Precomputed coverage relation between users and edge servers.
///
/// Indices are positional: user `k` refers to `users[k]` and server `m` to
/// `servers[m]` as passed to [`CoverageMap::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMap {
    /// `servers_of_user[k]` = sorted indices of servers covering user `k`
    /// (the paper's `M_k`).
    servers_of_user: Vec<Vec<usize>>,
    /// `users_of_server[m]` = sorted indices of users covered by server `m`
    /// (the paper's `K_m`).
    users_of_server: Vec<Vec<usize>>,
    /// User positions, kept so pairwise distances can be computed on
    /// demand instead of storing a dense `M × K` matrix (prohibitive at
    /// city scale: 1000 servers × 50k users would be 400 MB of `f64`s).
    user_points: Vec<Point>,
    /// Server positions (see `user_points`).
    server_points: Vec<Point>,
    coverage_radius_m: f64,
    /// Lazily built spatial bucketing of `server_points`, reused across
    /// [`CoverageMap::apply_user_moves`] batches. Purely derived state:
    /// ignored by equality, skipped by serde (serialised maps stay
    /// bit-stable and pre-grid snapshots still deserialise) and rebuilt
    /// on demand. Any future API that mutates `server_points` must
    /// reset this with `GridCache::default()`.
    #[serde(skip)]
    grid: GridCache,
}

/// Cached [`ServerGrid`] wrapper that is invisible to comparisons —
/// two maps with identical coverage state are equal whether or not
/// either has materialised its grid yet.
#[derive(Debug, Clone, Default)]
struct GridCache(Option<ServerGrid>);

impl PartialEq for GridCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl CoverageMap {
    /// Builds the coverage relation from user and server positions.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if the coverage radius is
    /// not strictly positive and finite.
    pub fn build(
        users: &[Point],
        servers: &[Point],
        coverage_radius_m: f64,
    ) -> Result<Self, WirelessError> {
        if !(coverage_radius_m.is_finite() && coverage_radius_m > 0.0) {
            return Err(WirelessError::InvalidParameter {
                name: "coverage_radius_m",
                value: coverage_radius_m,
            });
        }
        let mut servers_of_user = vec![Vec::new(); users.len()];
        let mut users_of_server = vec![Vec::new(); servers.len()];
        for (m, sp) in servers.iter().enumerate() {
            for (k, up) in users.iter().enumerate() {
                let d = sp.distance(*up);
                if d <= coverage_radius_m {
                    servers_of_user[k].push(m);
                    users_of_server[m].push(k);
                }
            }
        }
        Ok(Self {
            servers_of_user,
            users_of_server,
            user_points: users.to_vec(),
            server_points: servers.to_vec(),
            coverage_radius_m,
            grid: GridCache::default(),
        })
    }

    /// Applies a batch of user moves in place, recomputing the coverage
    /// rows of exactly the moved users and patching the per-server member
    /// lists (which stay sorted ascending, as [`CoverageMap::build`]
    /// produces them). The result is indistinguishable from rebuilding
    /// the map from scratch with the updated positions, at a cost of
    /// `O(moves × M)` distance checks instead of `O(K × M)`.
    ///
    /// Moves to the current position are ignored (they touch nothing).
    /// When `moves` lists the same user more than once the last entry
    /// wins, matching sequential application.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if a move names an
    /// unknown user; the map is left unchanged in that case.
    pub fn apply_user_moves(
        &mut self,
        moves: &[(usize, Point)],
    ) -> Result<CoverageDelta, WirelessError> {
        for &(k, _) in moves {
            if k >= self.user_points.len() {
                return Err(WirelessError::IndexOutOfRange {
                    entity: "user",
                    index: k,
                    len: self.user_points.len(),
                });
            }
        }
        // Large batches over many servers amortise a spatial bucketing
        // of the server points: each mover then probes only the servers
        // within one coverage radius of its 3 × 3 neighbourhood instead
        // of all M (the distance predicate itself is unchanged, so the
        // resulting rows are identical to a linear rescan). The grid is
        // built once and cached in the map — server positions never
        // change after construction, so every later mobility slot reuses
        // it instead of re-bucketing all M servers per batch.
        let grid = if moves.len().saturating_mul(self.server_points.len()) > 1 << 14 {
            if self.grid.0.is_none() {
                self.grid.0 = Some(ServerGrid::build(
                    &self.server_points,
                    self.coverage_radius_m,
                ));
            }
            self.grid.0.as_ref()
        } else {
            None
        };
        let mut moved: Vec<usize> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for &(k, position) in moves {
            if self.user_points[k] == position {
                continue;
            }
            self.user_points[k] = position;
            moved.push(k);
            let old_servers = std::mem::take(&mut self.servers_of_user[k]);
            let new_servers: Vec<usize> = match grid {
                Some(grid) => {
                    grid.covering_servers(position, &self.server_points, self.coverage_radius_m)
                }
                None => self
                    .server_points
                    .iter()
                    .enumerate()
                    .filter(|(_, sp)| sp.distance(position) <= self.coverage_radius_m)
                    .map(|(m, _)| m)
                    .collect(),
            };
            // Every server covering the user before or after is touched
            // (member set or member distance changed).
            touched.extend(old_servers.iter().chain(&new_servers));
            // Patch the sorted member lists where membership changed.
            for &m in &old_servers {
                if new_servers.binary_search(&m).is_err() {
                    let row = &mut self.users_of_server[m];
                    if let Ok(pos) = row.binary_search(&k) {
                        row.remove(pos);
                    }
                }
            }
            for &m in &new_servers {
                if old_servers.binary_search(&m).is_err() {
                    let row = &mut self.users_of_server[m];
                    if let Err(pos) = row.binary_search(&k) {
                        row.insert(pos, k);
                    }
                }
            }
            self.servers_of_user[k] = new_servers;
        }
        moved.sort_unstable();
        moved.dedup();
        touched.sort_unstable();
        touched.dedup();
        Ok(CoverageDelta {
            moved_users: moved,
            touched_servers: touched,
        })
    }

    /// Number of users in the topology.
    pub fn num_users(&self) -> usize {
        self.servers_of_user.len()
    }

    /// Number of edge servers in the topology.
    pub fn num_servers(&self) -> usize {
        self.users_of_server.len()
    }

    /// The coverage radius used to build the map, in metres.
    pub fn coverage_radius_m(&self) -> f64 {
        self.coverage_radius_m
    }

    /// The servers covering user `k` (the paper's `M_k`), sorted ascending.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if `k` is out of range.
    pub fn servers_of_user(&self, k: usize) -> Result<&[usize], WirelessError> {
        self.servers_of_user
            .get(k)
            .map(Vec::as_slice)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "user",
                index: k,
                len: self.servers_of_user.len(),
            })
    }

    /// The users associated with server `m` (the paper's `K_m`), sorted
    /// ascending.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if `m` is out of range.
    pub fn users_of_server(&self, m: usize) -> Result<&[usize], WirelessError> {
        self.users_of_server
            .get(m)
            .map(Vec::as_slice)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.users_of_server.len(),
            })
    }

    /// Distance between server `m` and user `k` in metres, computed on
    /// demand from the stored positions.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if either index is out of
    /// range.
    pub fn distance_m(&self, m: usize, k: usize) -> Result<f64, WirelessError> {
        let sp = self
            .server_points
            .get(m)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.server_points.len(),
            })?;
        let up = self
            .user_points
            .get(k)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "user",
                index: k,
                len: self.user_points.len(),
            })?;
        Ok(sp.distance(*up))
    }

    /// Fraction of covered `(server, user)` pairs among all `M · K`
    /// pairs — the coverage density driving the eligibility
    /// representation choice. Empty topologies report `0.0`.
    pub fn coverage_density(&self) -> f64 {
        let pairs = self.num_servers() * self.num_users();
        if pairs == 0 {
            return 0.0;
        }
        let covered: usize = self.servers_of_user.iter().map(Vec::len).sum();
        covered as f64 / pairs as f64
    }

    /// Whether server `m` covers user `k`.
    pub fn covers(&self, m: usize, k: usize) -> bool {
        self.distance_m(m, k)
            .map(|d| d <= self.coverage_radius_m)
            .unwrap_or(false)
    }

    /// Users without any covering server. The paper's formulation counts
    /// their requests as misses; surfacing them helps topology diagnostics.
    pub fn uncovered_users(&self) -> Vec<usize> {
        self.servers_of_user
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(k, _)| k)
            .collect()
    }

    /// Expected number of *active* users per server given an activity
    /// probability `p_A`, never less than 1 so that an idle cell still
    /// allocates resources to its single requester (the paper allocates
    /// `B / (p_A |K_m|)` to each associated user).
    pub fn expected_active_users(&self, m: usize, activity_probability: f64) -> f64 {
        let count = self
            .users_of_server
            .get(m)
            .map(Vec::len)
            .unwrap_or_default() as f64;
        (activity_probability * count).max(1.0)
    }
}

/// Uniform hash grid over server points with cell side equal to the
/// coverage radius: every server within one radius of a query point lies
/// in the 3 × 3 cell neighbourhood of the query's cell.
#[derive(Debug, Clone)]
struct ServerGrid {
    cell_m: f64,
    /// Ordered by cell coordinate so bucket iteration (if ever added)
    /// is deterministic; lookups stay `O(log cells)`.
    buckets: std::collections::BTreeMap<(i64, i64), Vec<u32>>,
}

impl ServerGrid {
    fn cell_of(point: Point, cell_m: f64) -> (i64, i64) {
        (
            (point.x / cell_m).floor() as i64,
            (point.y / cell_m).floor() as i64,
        )
    }

    fn build(servers: &[Point], cell_m: f64) -> Self {
        let mut buckets: std::collections::BTreeMap<(i64, i64), Vec<u32>> =
            std::collections::BTreeMap::new();
        for (m, sp) in servers.iter().enumerate() {
            buckets
                .entry(Self::cell_of(*sp, cell_m))
                .or_default()
                .push(m as u32);
        }
        Self { cell_m, buckets }
    }

    /// Ascending indices of the servers within `radius_m` of `point`,
    /// using the exact distance predicate of the linear scan.
    fn covering_servers(&self, point: Point, servers: &[Point], radius_m: f64) -> Vec<usize> {
        let (cx, cy) = Self::cell_of(point, self.cell_m);
        let mut found: Vec<usize> = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &m in bucket {
                        if servers[m as usize].distance(point) <= radius_m {
                            found.push(m as usize);
                        }
                    }
                }
            }
        }
        found.sort_unstable();
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_layout() -> (Vec<Point>, Vec<Point>) {
        // Two servers on a line, three users around them.
        let servers = vec![Point::new(0.0, 0.0), Point::new(500.0, 0.0)];
        let users = vec![
            Point::new(100.0, 0.0), // covered by server 0 only
            Point::new(250.0, 0.0), // covered by both (radius 275)
            Point::new(900.0, 0.0), // covered by none
        ];
        (users, servers)
    }

    #[test]
    fn coverage_respects_radius() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert_eq!(map.num_users(), 3);
        assert_eq!(map.num_servers(), 2);
        assert_eq!(map.servers_of_user(0).unwrap(), &[0]);
        assert_eq!(map.servers_of_user(1).unwrap(), &[0, 1]);
        assert!(map.servers_of_user(2).unwrap().is_empty());
        assert_eq!(map.users_of_server(0).unwrap(), &[0, 1]);
        assert_eq!(map.users_of_server(1).unwrap(), &[1]);
        assert_eq!(map.uncovered_users(), vec![2]);
        assert!(map.covers(0, 0));
        assert!(!map.covers(1, 0));
        assert!(!map.covers(0, 2));
        assert_eq!(map.coverage_radius_m(), 275.0);
        // Three covered pairs out of 2 x 3.
        assert!((map.coverage_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distances_are_exact() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert_eq!(map.distance_m(0, 0).unwrap(), 100.0);
        assert_eq!(map.distance_m(1, 1).unwrap(), 250.0);
        assert_eq!(map.distance_m(1, 2).unwrap(), 400.0);
    }

    #[test]
    fn out_of_range_queries_error() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert!(map.servers_of_user(3).is_err());
        assert!(map.users_of_server(2).is_err());
        assert!(map.distance_m(2, 0).is_err());
        assert!(map.distance_m(0, 5).is_err());
        assert!(!map.covers(9, 9));
    }

    #[test]
    fn invalid_radius_is_rejected() {
        let (users, servers) = square_layout();
        assert!(CoverageMap::build(&users, &servers, 0.0).is_err());
        assert!(CoverageMap::build(&users, &servers, f64::NAN).is_err());
    }

    #[test]
    fn expected_active_users_has_floor_of_one() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        // Server 0 covers 2 users, activity 0.5 -> exactly 1.0 expected.
        assert_eq!(map.expected_active_users(0, 0.5), 1.0);
        // Server 1 covers 1 user -> floor keeps it at 1.
        assert_eq!(map.expected_active_users(1, 0.5), 1.0);
        // Higher load: 2 users fully active -> 2.
        assert_eq!(map.expected_active_users(0, 1.0), 2.0);
        // Unknown server index degrades gracefully to the floor.
        assert_eq!(map.expected_active_users(99, 0.5), 1.0);
    }

    #[test]
    fn apply_user_moves_matches_full_rebuild() {
        let (mut users, servers) = square_layout();
        let mut map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        // Move user 0 out of all coverage, user 2 into server 1's cell,
        // and user 1 within its current cells (distance-only change).
        let moves = vec![
            (0usize, Point::new(950.0, 950.0)),
            (2usize, Point::new(520.0, 0.0)),
            (1usize, Point::new(260.0, 0.0)),
        ];
        let delta = map.apply_user_moves(&moves).unwrap();
        for &(k, p) in &moves {
            users[k] = p;
        }
        let rebuilt = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert_eq!(map, rebuilt);
        assert_eq!(delta.moved_users(), &[0, 1, 2]);
        // Server 0 lost user 0 (and user 1 moved within it); server 1
        // gained user 2.
        assert_eq!(delta.touched_servers(), &[0, 1]);
        assert!(!delta.is_empty());
    }

    #[test]
    fn apply_user_moves_ignores_no_ops_and_rejects_bad_indices() {
        let (users, servers) = square_layout();
        let mut map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        let original = map.clone();
        // Moving a user to its current position changes nothing.
        let delta = map.apply_user_moves(&[(1, users[1])]).unwrap();
        assert!(delta.is_empty());
        assert!(delta.touched_servers().is_empty());
        assert_eq!(map, original);
        // Unknown users are rejected and leave the map untouched.
        assert!(map.apply_user_moves(&[(9, Point::new(0.0, 0.0))]).is_err());
        assert_eq!(map, original);
        // Duplicate entries: the last move wins.
        let mut a = map.clone();
        a.apply_user_moves(&[(0, Point::new(900.0, 900.0)), (0, Point::new(120.0, 0.0))])
            .unwrap();
        let mut b = map.clone();
        b.apply_user_moves(&[(0, Point::new(120.0, 0.0))]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_accelerated_rescan_matches_full_rebuild() {
        // A batch large enough to trip the spatial-grid threshold
        // (moves × servers > 2^14): 200 servers, 120 movers.
        let servers: Vec<Point> = (0..200)
            .map(|i| Point::new((i * 137 % 2000) as f64, (i * 353 % 2000) as f64))
            .collect();
        let mut users: Vec<Point> = (0..150)
            .map(|k| Point::new((k * 211 % 2000) as f64, (k * 97 % 2000) as f64))
            .collect();
        let mut map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        let moves: Vec<(usize, Point)> = (0..120)
            .map(|j| {
                (
                    j,
                    Point::new(
                        ((j * 449 + 31) % 2000) as f64,
                        ((j * 283 + 7) % 2000) as f64,
                    ),
                )
            })
            .collect();
        map.apply_user_moves(&moves).unwrap();
        for &(k, p) in &moves {
            users[k] = p;
        }
        // The freshly rebuilt map has no materialised grid; equality
        // ignores the cache and compares coverage state only.
        assert_eq!(map, CoverageMap::build(&users, &servers, 275.0).unwrap());
        assert!(map.grid.0.is_some(), "large batches materialise the grid");

        // A second large batch reuses the cached grid (instead of
        // re-bucketing all servers) and still matches a full rebuild.
        let moves2: Vec<(usize, Point)> = (0..120)
            .map(|j| {
                (
                    j + 30,
                    Point::new(
                        ((j * 631 + 59) % 2000) as f64,
                        ((j * 173 + 11) % 2000) as f64,
                    ),
                )
            })
            .collect();
        map.apply_user_moves(&moves2).unwrap();
        for &(k, p) in &moves2 {
            users[k] = p;
        }
        assert_eq!(map, CoverageMap::build(&users, &servers, 275.0).unwrap());
    }

    #[test]
    fn empty_topologies_are_allowed() {
        let map = CoverageMap::build(&[], &[], 275.0).unwrap();
        assert_eq!(map.num_users(), 0);
        assert_eq!(map.num_servers(), 0);
        assert!(map.uncovered_users().is_empty());
    }
}
