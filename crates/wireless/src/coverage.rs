//! Coverage and association between users and edge servers.
//!
//! A user `k` is covered by edge server `m` when their distance is at most
//! the coverage radius (275 m in the paper). `M_k` denotes the set of edge
//! servers covering user `k` and `K_m` the set of users associated with
//! server `m`; both are precomputed by [`CoverageMap`].

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::geometry::Point;

/// Precomputed coverage relation between users and edge servers.
///
/// Indices are positional: user `k` refers to `users[k]` and server `m` to
/// `servers[m]` as passed to [`CoverageMap::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMap {
    /// `servers_of_user[k]` = sorted indices of servers covering user `k`
    /// (the paper's `M_k`).
    servers_of_user: Vec<Vec<usize>>,
    /// `users_of_server[m]` = sorted indices of users covered by server `m`
    /// (the paper's `K_m`).
    users_of_server: Vec<Vec<usize>>,
    /// User positions, kept so pairwise distances can be computed on
    /// demand instead of storing a dense `M × K` matrix (prohibitive at
    /// city scale: 1000 servers × 50k users would be 400 MB of `f64`s).
    user_points: Vec<Point>,
    /// Server positions (see `user_points`).
    server_points: Vec<Point>,
    coverage_radius_m: f64,
}

impl CoverageMap {
    /// Builds the coverage relation from user and server positions.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if the coverage radius is
    /// not strictly positive and finite.
    pub fn build(
        users: &[Point],
        servers: &[Point],
        coverage_radius_m: f64,
    ) -> Result<Self, WirelessError> {
        if !(coverage_radius_m.is_finite() && coverage_radius_m > 0.0) {
            return Err(WirelessError::InvalidParameter {
                name: "coverage_radius_m",
                value: coverage_radius_m,
            });
        }
        let mut servers_of_user = vec![Vec::new(); users.len()];
        let mut users_of_server = vec![Vec::new(); servers.len()];
        for (m, sp) in servers.iter().enumerate() {
            for (k, up) in users.iter().enumerate() {
                let d = sp.distance(*up);
                if d <= coverage_radius_m {
                    servers_of_user[k].push(m);
                    users_of_server[m].push(k);
                }
            }
        }
        Ok(Self {
            servers_of_user,
            users_of_server,
            user_points: users.to_vec(),
            server_points: servers.to_vec(),
            coverage_radius_m,
        })
    }

    /// Number of users in the topology.
    pub fn num_users(&self) -> usize {
        self.servers_of_user.len()
    }

    /// Number of edge servers in the topology.
    pub fn num_servers(&self) -> usize {
        self.users_of_server.len()
    }

    /// The coverage radius used to build the map, in metres.
    pub fn coverage_radius_m(&self) -> f64 {
        self.coverage_radius_m
    }

    /// The servers covering user `k` (the paper's `M_k`), sorted ascending.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if `k` is out of range.
    pub fn servers_of_user(&self, k: usize) -> Result<&[usize], WirelessError> {
        self.servers_of_user
            .get(k)
            .map(Vec::as_slice)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "user",
                index: k,
                len: self.servers_of_user.len(),
            })
    }

    /// The users associated with server `m` (the paper's `K_m`), sorted
    /// ascending.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if `m` is out of range.
    pub fn users_of_server(&self, m: usize) -> Result<&[usize], WirelessError> {
        self.users_of_server
            .get(m)
            .map(Vec::as_slice)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.users_of_server.len(),
            })
    }

    /// Distance between server `m` and user `k` in metres, computed on
    /// demand from the stored positions.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::IndexOutOfRange`] if either index is out of
    /// range.
    pub fn distance_m(&self, m: usize, k: usize) -> Result<f64, WirelessError> {
        let sp = self
            .server_points
            .get(m)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "server",
                index: m,
                len: self.server_points.len(),
            })?;
        let up = self
            .user_points
            .get(k)
            .ok_or(WirelessError::IndexOutOfRange {
                entity: "user",
                index: k,
                len: self.user_points.len(),
            })?;
        Ok(sp.distance(*up))
    }

    /// Fraction of covered `(server, user)` pairs among all `M · K`
    /// pairs — the coverage density driving the eligibility
    /// representation choice. Empty topologies report `0.0`.
    pub fn coverage_density(&self) -> f64 {
        let pairs = self.num_servers() * self.num_users();
        if pairs == 0 {
            return 0.0;
        }
        let covered: usize = self.servers_of_user.iter().map(Vec::len).sum();
        covered as f64 / pairs as f64
    }

    /// Whether server `m` covers user `k`.
    pub fn covers(&self, m: usize, k: usize) -> bool {
        self.distance_m(m, k)
            .map(|d| d <= self.coverage_radius_m)
            .unwrap_or(false)
    }

    /// Users without any covering server. The paper's formulation counts
    /// their requests as misses; surfacing them helps topology diagnostics.
    pub fn uncovered_users(&self) -> Vec<usize> {
        self.servers_of_user
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(k, _)| k)
            .collect()
    }

    /// Expected number of *active* users per server given an activity
    /// probability `p_A`, never less than 1 so that an idle cell still
    /// allocates resources to its single requester (the paper allocates
    /// `B / (p_A |K_m|)` to each associated user).
    pub fn expected_active_users(&self, m: usize, activity_probability: f64) -> f64 {
        let count = self
            .users_of_server
            .get(m)
            .map(Vec::len)
            .unwrap_or_default() as f64;
        (activity_probability * count).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_layout() -> (Vec<Point>, Vec<Point>) {
        // Two servers on a line, three users around them.
        let servers = vec![Point::new(0.0, 0.0), Point::new(500.0, 0.0)];
        let users = vec![
            Point::new(100.0, 0.0), // covered by server 0 only
            Point::new(250.0, 0.0), // covered by both (radius 275)
            Point::new(900.0, 0.0), // covered by none
        ];
        (users, servers)
    }

    #[test]
    fn coverage_respects_radius() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert_eq!(map.num_users(), 3);
        assert_eq!(map.num_servers(), 2);
        assert_eq!(map.servers_of_user(0).unwrap(), &[0]);
        assert_eq!(map.servers_of_user(1).unwrap(), &[0, 1]);
        assert!(map.servers_of_user(2).unwrap().is_empty());
        assert_eq!(map.users_of_server(0).unwrap(), &[0, 1]);
        assert_eq!(map.users_of_server(1).unwrap(), &[1]);
        assert_eq!(map.uncovered_users(), vec![2]);
        assert!(map.covers(0, 0));
        assert!(!map.covers(1, 0));
        assert!(!map.covers(0, 2));
        assert_eq!(map.coverage_radius_m(), 275.0);
        // Three covered pairs out of 2 x 3.
        assert!((map.coverage_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distances_are_exact() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert_eq!(map.distance_m(0, 0).unwrap(), 100.0);
        assert_eq!(map.distance_m(1, 1).unwrap(), 250.0);
        assert_eq!(map.distance_m(1, 2).unwrap(), 400.0);
    }

    #[test]
    fn out_of_range_queries_error() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        assert!(map.servers_of_user(3).is_err());
        assert!(map.users_of_server(2).is_err());
        assert!(map.distance_m(2, 0).is_err());
        assert!(map.distance_m(0, 5).is_err());
        assert!(!map.covers(9, 9));
    }

    #[test]
    fn invalid_radius_is_rejected() {
        let (users, servers) = square_layout();
        assert!(CoverageMap::build(&users, &servers, 0.0).is_err());
        assert!(CoverageMap::build(&users, &servers, f64::NAN).is_err());
    }

    #[test]
    fn expected_active_users_has_floor_of_one() {
        let (users, servers) = square_layout();
        let map = CoverageMap::build(&users, &servers, 275.0).unwrap();
        // Server 0 covers 2 users, activity 0.5 -> exactly 1.0 expected.
        assert_eq!(map.expected_active_users(0, 0.5), 1.0);
        // Server 1 covers 1 user -> floor keeps it at 1.
        assert_eq!(map.expected_active_users(1, 0.5), 1.0);
        // Higher load: 2 users fully active -> 2.
        assert_eq!(map.expected_active_users(0, 1.0), 2.0);
        // Unknown server index degrades gracefully to the floor.
        assert_eq!(map.expected_active_users(99, 0.5), 1.0);
    }

    #[test]
    fn empty_topologies_are_allowed() {
        let map = CoverageMap::build(&[], &[], 275.0).unwrap();
        assert_eq!(map.num_users(), 0);
        assert_eq!(map.num_servers(), 0);
        assert!(map.uncovered_users().is_empty());
    }
}
