//! Error types for the wireless substrate.

use std::fmt;

/// Errors produced while constructing or evaluating the wireless substrate.
///
/// All public fallible functions of this crate return `Result<_, WirelessError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// A physical parameter was non-positive or non-finite where a strictly
    /// positive finite value is required (e.g. bandwidth, power, distance).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The provided value.
        value: f64,
    },
    /// A deployment area was requested with a non-positive side length.
    InvalidArea {
        /// The requested side length in metres.
        side_m: f64,
    },
    /// A backhaul link was requested between a server and itself, or between
    /// server indices that do not exist.
    InvalidLink {
        /// Source edge-server index.
        from: usize,
        /// Destination edge-server index.
        to: usize,
        /// Number of edge servers in the topology.
        servers: usize,
    },
    /// A coverage or allocation query referenced a user or server index
    /// outside the topology.
    IndexOutOfRange {
        /// Description of the entity being indexed ("user" or "server").
        entity: &'static str,
        /// The offending index.
        index: usize,
        /// The number of entities available.
        len: usize,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            WirelessError::InvalidArea { side_m } => {
                write!(f, "invalid deployment area side length {side_m} m")
            }
            WirelessError::InvalidLink { from, to, servers } => {
                write!(
                    f,
                    "invalid backhaul link {from} -> {to} in a topology of {servers} servers"
                )
            }
            WirelessError::IndexOutOfRange { entity, index, len } => {
                write!(f, "{entity} index {index} out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WirelessError::InvalidParameter {
            name: "bandwidth",
            value: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("bandwidth"));
        assert!(msg.contains("-1"));

        let e = WirelessError::InvalidArea { side_m: 0.0 };
        assert!(e.to_string().contains("0"));

        let e = WirelessError::InvalidLink {
            from: 1,
            to: 1,
            servers: 4,
        };
        assert!(e.to_string().contains("1 -> 1"));

        let e = WirelessError::IndexOutOfRange {
            entity: "user",
            index: 9,
            len: 3,
        };
        assert!(e.to_string().contains("user"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WirelessError>();
    }
}
