//! Planar geometry: points, distances and the square deployment area.
//!
//! The TrimCaching evaluation (Section VII-A) deploys `K` users and `M`
//! edge servers uniformly at random over a 1 km × 1 km square; the
//! exhaustive-search comparison (Section VII-D) shrinks the square to
//! 400 m × 400 m. [`DeploymentArea`] captures that square and provides
//! uniform sampling, while [`Point`] is the shared 2-D position type.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::WirelessError;

/// A position in the deployment plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates in metres.
    ///
    /// ```
    /// use trimcaching_wireless::geometry::Point;
    /// let p = Point::new(3.0, 4.0);
    /// assert_eq!(p.distance(Point::new(0.0, 0.0)), 5.0);
    /// ```
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point, in metres.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance, useful to avoid the square root when only
    /// comparisons are needed.
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Translates the point by `(dx, dy)` metres.
    pub fn translated(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// The square deployment area over which users and edge servers are dropped.
///
/// The paper uses a 1 km² square for the main experiments and a 400 m square
/// for the exhaustive-search comparison; [`DeploymentArea::paper_default`]
/// and [`DeploymentArea::paper_small`] provide those presets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentArea {
    side_m: f64,
}

impl DeploymentArea {
    /// Creates a square deployment area with the given side length in metres.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidArea`] if `side_m` is not a strictly
    /// positive finite number.
    pub fn new(side_m: f64) -> Result<Self, WirelessError> {
        if !(side_m.is_finite() && side_m > 0.0) {
            return Err(WirelessError::InvalidArea { side_m });
        }
        Ok(Self { side_m })
    }

    /// The 1 km × 1 km area used by the main TrimCaching experiments.
    pub fn paper_default() -> Self {
        Self { side_m: 1000.0 }
    }

    /// The 400 m × 400 m area used for the exhaustive-search comparison
    /// (Fig. 6).
    pub fn paper_small() -> Self {
        Self { side_m: 400.0 }
    }

    /// Side length of the square in metres.
    pub fn side_m(&self) -> f64 {
        self.side_m
    }

    /// Area in square metres.
    pub fn area_m2(&self) -> f64 {
        self.side_m * self.side_m
    }

    /// Samples a point uniformly at random inside the square.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            rng.gen_range(0.0..self.side_m),
            rng.gen_range(0.0..self.side_m),
        )
    }

    /// Samples `n` points uniformly and independently inside the square.
    pub fn sample_uniform_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point> {
        (0..n).map(|_| self.sample_uniform(rng)).collect()
    }

    /// Returns `true` when the point lies inside (or on the border of) the
    /// square.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.side_m && p.y <= self.side_m
    }

    /// Clamps a point to the square, returning the nearest point inside it.
    ///
    /// Used by the mobility models to keep moving users inside the
    /// deployment area (users reflect off the border).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.side_m), p.y.clamp(0.0, self.side_m))
    }
}

impl Default for DeploymentArea {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_squared(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn translation_moves_point() {
        let p = Point::new(1.0, 1.0).translated(2.0, -0.5);
        assert_eq!(p, Point::new(3.0, 0.5));
    }

    #[test]
    fn area_rejects_bad_sides() {
        assert!(DeploymentArea::new(0.0).is_err());
        assert!(DeploymentArea::new(-5.0).is_err());
        assert!(DeploymentArea::new(f64::NAN).is_err());
        assert!(DeploymentArea::new(f64::INFINITY).is_err());
        assert!(DeploymentArea::new(250.0).is_ok());
    }

    #[test]
    fn paper_presets_match_section_vii() {
        assert_eq!(DeploymentArea::paper_default().side_m(), 1000.0);
        assert_eq!(DeploymentArea::paper_small().side_m(), 400.0);
        assert_eq!(DeploymentArea::paper_default().area_m2(), 1_000_000.0);
    }

    #[test]
    fn uniform_samples_stay_inside() {
        let area = DeploymentArea::new(250.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let p = area.sample_uniform(&mut rng);
            assert!(area.contains(p), "{p:?} escaped the area");
        }
        let pts = area.sample_uniform_n(64, &mut rng);
        assert_eq!(pts.len(), 64);
        assert!(pts.iter().all(|p| area.contains(*p)));
    }

    #[test]
    fn clamp_projects_outside_points_to_border() {
        let area = DeploymentArea::new(100.0).unwrap();
        let p = area.clamp(Point::new(-10.0, 150.0));
        assert_eq!(p, Point::new(0.0, 100.0));
        let q = Point::new(50.0, 50.0);
        assert_eq!(area.clamp(q), q);
    }

    #[test]
    fn samples_cover_the_area_roughly_uniformly() {
        // Split the square in four quadrants and check each receives a
        // reasonable share of samples (a weak but deterministic uniformity
        // check with a fixed seed).
        let area = DeploymentArea::paper_default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let n = 4000;
        for _ in 0..n {
            let p = area.sample_uniform(&mut rng);
            let qx = usize::from(p.x > 500.0);
            let qy = usize::from(p.y > 500.0);
            counts[2 * qy + qx] += 1;
        }
        for c in counts {
            assert!(c > n / 8, "quadrant too empty: {counts:?}");
        }
    }
}
