//! Wireless network substrate for the TrimCaching reproduction.
//!
//! This crate models the radio-access and backhaul layer of a multi-cell
//! wireless edge network exactly as assumed by the TrimCaching paper
//! (Qu et al., ICDCS 2024, Section III-A and VII-A):
//!
//! * edge servers (base stations) and users are points in a square
//!   deployment area ([`geometry`]);
//! * the expected downlink rate from an edge server to an associated user
//!   follows the Shannon-capacity expression of Eq. (1) with a power-law
//!   path loss ([`pathloss`], [`channel`]);
//! * small-scale fading is Rayleigh; the cache-hit evaluation in the paper
//!   is averaged over ~10³ Rayleigh realisations ([`channel::Fading`]);
//! * each edge server splits its total bandwidth and transmit power evenly
//!   across its expected number of active associated users
//!   ([`allocation`]);
//! * edge servers are interconnected by constant-rate backhaul links
//!   ([`backhaul`]);
//! * users are covered by every edge server within a fixed coverage radius
//!   ([`coverage`]).
//!
//! # Example
//!
//! ```
//! use trimcaching_wireless::{
//!     channel::expected_rate_bps,
//!     geometry::Point,
//!     params::RadioParams,
//! };
//!
//! let params = RadioParams::paper_defaults();
//! let server = Point::new(0.0, 0.0);
//! let user = Point::new(100.0, 50.0);
//! // A single active user receives the full bandwidth and power.
//! let rate = expected_rate_bps(
//!     params.total_bandwidth_hz,
//!     params.total_power_w(),
//!     server.distance(user),
//!     &params,
//! );
//! assert!(rate > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod backhaul;
pub mod channel;
pub mod coverage;
pub mod error;
pub mod geometry;
pub mod params;
pub mod pathloss;
pub mod shadowing;

pub use allocation::PerUserAllocation;
pub use backhaul::Backhaul;
pub use channel::{expected_rate_bps, Fading, RateContext, RayleighFading};
pub use coverage::{CoverageDelta, CoverageMap};
pub use error::WirelessError;
pub use geometry::{DeploymentArea, Point};
pub use params::RadioParams;
pub use pathloss::{PathLossModel, PowerLawPathLoss};
pub use shadowing::{LogNormalShadowing, ShadowedRayleigh};
