//! Typed radio parameters and the paper's default configuration.
//!
//! Section VII-A of the paper fixes the following physical-layer parameters:
//!
//! * total edge-server bandwidth `B = 400 MHz`,
//! * total transmit power `P = 43 dBm`,
//! * user activity probability `p_A = 0.5`,
//! * antenna factor `γ₀ = 1`, path-loss exponent `α₀ = 4`,
//! * noise power spectral density `n₀` (thermal noise, −174 dBm/Hz),
//! * coverage radius 275 m,
//! * edge-to-edge backhaul rate 10 Gbps.
//!
//! [`RadioParams`] bundles these and offers a builder for experiments that
//! sweep any of them.

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;

/// Thermal noise power spectral density in dBm/Hz used by default.
pub const DEFAULT_NOISE_DBM_PER_HZ: f64 = -174.0;

/// Converts a power in dBm to Watts.
///
/// ```
/// use trimcaching_wireless::params::dbm_to_watts;
/// assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
/// assert!((dbm_to_watts(0.0) - 0.001).abs() < 1e-12);
/// ```
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf((dbm - 30.0) / 10.0)
}

/// Converts a power in Watts to dBm.
///
/// # Panics
///
/// Panics in debug builds if `watts` is not strictly positive.
pub fn watts_to_dbm(watts: f64) -> f64 {
    debug_assert!(watts > 0.0, "power must be positive to express in dBm");
    10.0 * watts.log10() + 30.0
}

/// Physical-layer parameters of the wireless edge network.
///
/// Construct with [`RadioParams::paper_defaults`] for the paper's setting or
/// with [`RadioParamsBuilder`] to override individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioParams {
    /// Total downlink bandwidth of an edge server, in Hz (`B`).
    pub total_bandwidth_hz: f64,
    /// Total transmit power of an edge server, in dBm (`P`).
    pub total_power_dbm: f64,
    /// Probability that an associated user is active (`p_A`).
    pub activity_probability: f64,
    /// Antenna-related gain factor (`γ₀` in Eq. (1)).
    pub antenna_gain: f64,
    /// Path-loss exponent (`α₀` in Eq. (1)).
    pub path_loss_exponent: f64,
    /// Noise power spectral density in dBm/Hz (`n₀`).
    pub noise_dbm_per_hz: f64,
    /// Coverage radius of an edge server, in metres.
    pub coverage_radius_m: f64,
    /// Edge-to-edge backhaul rate, in bits per second (`C_{m,m'}`).
    pub backhaul_rate_bps: f64,
    /// Minimum server-user distance used to keep the path loss bounded, in
    /// metres. The paper's model is singular at `d = 0`; a 1 m floor is the
    /// conventional fix and has no effect on the reported metrics.
    pub min_distance_m: f64,
}

impl RadioParams {
    /// The parameter set of Section VII-A of the paper.
    pub fn paper_defaults() -> Self {
        Self {
            total_bandwidth_hz: 400.0e6,
            total_power_dbm: 43.0,
            activity_probability: 0.5,
            antenna_gain: 1.0,
            path_loss_exponent: 4.0,
            noise_dbm_per_hz: DEFAULT_NOISE_DBM_PER_HZ,
            coverage_radius_m: 275.0,
            backhaul_rate_bps: 10.0e9,
            min_distance_m: 1.0,
        }
    }

    /// Total transmit power in Watts.
    pub fn total_power_w(&self) -> f64 {
        dbm_to_watts(self.total_power_dbm)
    }

    /// Noise power spectral density in Watts per Hz.
    pub fn noise_w_per_hz(&self) -> f64 {
        dbm_to_watts(self.noise_dbm_per_hz)
    }

    /// Starts a builder initialised with the paper defaults.
    pub fn builder() -> RadioParamsBuilder {
        RadioParamsBuilder::new()
    }

    /// Validates that every parameter is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), WirelessError> {
        fn positive(name: &'static str, v: f64) -> Result<(), WirelessError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(WirelessError::InvalidParameter { name, value: v })
            }
        }
        positive("total_bandwidth_hz", self.total_bandwidth_hz)?;
        if !self.total_power_dbm.is_finite() {
            return Err(WirelessError::InvalidParameter {
                name: "total_power_dbm",
                value: self.total_power_dbm,
            });
        }
        if !(0.0..=1.0).contains(&self.activity_probability)
            || !self.activity_probability.is_finite()
        {
            return Err(WirelessError::InvalidParameter {
                name: "activity_probability",
                value: self.activity_probability,
            });
        }
        positive("antenna_gain", self.antenna_gain)?;
        positive("path_loss_exponent", self.path_loss_exponent)?;
        if !self.noise_dbm_per_hz.is_finite() {
            return Err(WirelessError::InvalidParameter {
                name: "noise_dbm_per_hz",
                value: self.noise_dbm_per_hz,
            });
        }
        positive("coverage_radius_m", self.coverage_radius_m)?;
        positive("backhaul_rate_bps", self.backhaul_rate_bps)?;
        positive("min_distance_m", self.min_distance_m)?;
        Ok(())
    }
}

impl Default for RadioParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Builder for [`RadioParams`], initialised with the paper defaults.
///
/// ```
/// use trimcaching_wireless::params::RadioParams;
///
/// let params = RadioParams::builder()
///     .total_bandwidth_hz(200.0e6)
///     .coverage_radius_m(300.0)
///     .build()
///     .expect("valid parameters");
/// assert_eq!(params.total_bandwidth_hz, 200.0e6);
/// ```
#[derive(Debug, Clone)]
pub struct RadioParamsBuilder {
    params: RadioParams,
}

impl RadioParamsBuilder {
    /// Creates a builder seeded with [`RadioParams::paper_defaults`].
    pub fn new() -> Self {
        Self {
            params: RadioParams::paper_defaults(),
        }
    }

    /// Sets the total downlink bandwidth in Hz.
    pub fn total_bandwidth_hz(mut self, v: f64) -> Self {
        self.params.total_bandwidth_hz = v;
        self
    }

    /// Sets the total transmit power in dBm.
    pub fn total_power_dbm(mut self, v: f64) -> Self {
        self.params.total_power_dbm = v;
        self
    }

    /// Sets the user activity probability `p_A`.
    pub fn activity_probability(mut self, v: f64) -> Self {
        self.params.activity_probability = v;
        self
    }

    /// Sets the antenna gain factor `γ₀`.
    pub fn antenna_gain(mut self, v: f64) -> Self {
        self.params.antenna_gain = v;
        self
    }

    /// Sets the path-loss exponent `α₀`.
    pub fn path_loss_exponent(mut self, v: f64) -> Self {
        self.params.path_loss_exponent = v;
        self
    }

    /// Sets the noise power spectral density in dBm/Hz.
    pub fn noise_dbm_per_hz(mut self, v: f64) -> Self {
        self.params.noise_dbm_per_hz = v;
        self
    }

    /// Sets the edge-server coverage radius in metres.
    pub fn coverage_radius_m(mut self, v: f64) -> Self {
        self.params.coverage_radius_m = v;
        self
    }

    /// Sets the edge-to-edge backhaul rate in bits per second.
    pub fn backhaul_rate_bps(mut self, v: f64) -> Self {
        self.params.backhaul_rate_bps = v;
        self
    }

    /// Sets the minimum server-user distance floor in metres.
    pub fn min_distance_m(mut self, v: f64) -> Self {
        self.params.min_distance_m = v;
        self
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if any field is invalid.
    pub fn build(self) -> Result<RadioParams, WirelessError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl Default for RadioParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_conversions_round_trip() {
        for dbm in [-30.0, 0.0, 10.0, 43.0] {
            let w = dbm_to_watts(dbm);
            assert!((watts_to_dbm(w) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_defaults_match_section_vii() {
        let p = RadioParams::paper_defaults();
        assert_eq!(p.total_bandwidth_hz, 400.0e6);
        assert_eq!(p.total_power_dbm, 43.0);
        assert_eq!(p.activity_probability, 0.5);
        assert_eq!(p.antenna_gain, 1.0);
        assert_eq!(p.path_loss_exponent, 4.0);
        assert_eq!(p.coverage_radius_m, 275.0);
        assert_eq!(p.backhaul_rate_bps, 10.0e9);
        assert!(p.validate().is_ok());
        // 43 dBm is about 20 W.
        assert!((p.total_power_w() - 19.952623149688797).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides_fields() {
        let p = RadioParams::builder()
            .total_bandwidth_hz(100.0e6)
            .total_power_dbm(30.0)
            .activity_probability(1.0)
            .antenna_gain(2.0)
            .path_loss_exponent(3.5)
            .noise_dbm_per_hz(-170.0)
            .coverage_radius_m(500.0)
            .backhaul_rate_bps(1.0e9)
            .min_distance_m(0.5)
            .build()
            .unwrap();
        assert_eq!(p.total_bandwidth_hz, 100.0e6);
        assert_eq!(p.total_power_dbm, 30.0);
        assert_eq!(p.activity_probability, 1.0);
        assert_eq!(p.antenna_gain, 2.0);
        assert_eq!(p.path_loss_exponent, 3.5);
        assert_eq!(p.noise_dbm_per_hz, -170.0);
        assert_eq!(p.coverage_radius_m, 500.0);
        assert_eq!(p.backhaul_rate_bps, 1.0e9);
        assert_eq!(p.min_distance_m, 0.5);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(RadioParams::builder()
            .total_bandwidth_hz(0.0)
            .build()
            .is_err());
        assert!(RadioParams::builder()
            .activity_probability(1.5)
            .build()
            .is_err());
        assert!(RadioParams::builder()
            .path_loss_exponent(-4.0)
            .build()
            .is_err());
        assert!(RadioParams::builder()
            .coverage_radius_m(f64::NAN)
            .build()
            .is_err());
        assert!(RadioParams::builder()
            .backhaul_rate_bps(-1.0)
            .build()
            .is_err());
        assert!(RadioParams::builder().min_distance_m(0.0).build().is_err());
        assert!(RadioParams::builder()
            .noise_dbm_per_hz(f64::INFINITY)
            .build()
            .is_err());
        assert!(RadioParams::builder()
            .total_power_dbm(f64::NAN)
            .build()
            .is_err());
        assert!(RadioParams::builder().antenna_gain(0.0).build().is_err());
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(RadioParams::default(), RadioParams::paper_defaults());
    }
}
