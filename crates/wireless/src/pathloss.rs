//! Large-scale path-loss models.
//!
//! Eq. (1) of the paper uses a power-law attenuation `γ₀ · d^{-α₀}` between
//! an edge server and a user at distance `d`. [`PowerLawPathLoss`] implements
//! exactly that model; the [`PathLossModel`] trait leaves room for
//! alternative models (e.g. 3GPP urban-macro) in downstream experiments.

use serde::{Deserialize, Serialize};

use crate::error::WirelessError;
use crate::params::RadioParams;

/// A large-scale path-loss (channel gain) model.
///
/// Implementations return the *linear* channel power gain, i.e. the factor
/// multiplying the transmit power in the received-signal power. Gains are
/// dimensionless and must be positive and finite for all positive distances.
pub trait PathLossModel: std::fmt::Debug {
    /// Linear channel power gain at distance `distance_m` (metres).
    fn gain(&self, distance_m: f64) -> f64;

    /// Path loss in dB at distance `distance_m`, i.e. `-10·log10(gain)`.
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        -10.0 * self.gain(distance_m).log10()
    }
}

/// The power-law path loss `γ₀ · d^{-α₀}` of Eq. (1).
///
/// The gain is clamped at the distance floor `min_distance_m` to avoid the
/// singularity at `d = 0` (a standard convention; the evaluation never
/// places a user closer than ~1 m from a base station).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawPathLoss {
    /// Antenna-related gain factor `γ₀`.
    pub antenna_gain: f64,
    /// Path-loss exponent `α₀`.
    pub exponent: f64,
    /// Distance floor in metres.
    pub min_distance_m: f64,
}

impl PowerLawPathLoss {
    /// Creates a power-law model.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidParameter`] if any argument is not a
    /// strictly positive finite number.
    pub fn new(
        antenna_gain: f64,
        exponent: f64,
        min_distance_m: f64,
    ) -> Result<Self, WirelessError> {
        for (name, v) in [
            ("antenna_gain", antenna_gain),
            ("exponent", exponent),
            ("min_distance_m", min_distance_m),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(WirelessError::InvalidParameter { name, value: v });
            }
        }
        Ok(Self {
            antenna_gain,
            exponent,
            min_distance_m,
        })
    }

    /// Builds the model from a [`RadioParams`] bundle.
    pub fn from_params(params: &RadioParams) -> Self {
        Self {
            antenna_gain: params.antenna_gain,
            exponent: params.path_loss_exponent,
            min_distance_m: params.min_distance_m,
        }
    }
}

impl PathLossModel for PowerLawPathLoss {
    fn gain(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.min_distance_m);
        self.antenna_gain * d.powf(-self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decreases_with_distance() {
        let pl = PowerLawPathLoss::new(1.0, 4.0, 1.0).unwrap();
        let mut prev = pl.gain(1.0);
        for d in [2.0, 5.0, 10.0, 50.0, 275.0, 1000.0] {
            let g = pl.gain(d);
            assert!(g < prev, "gain must be strictly decreasing");
            assert!(g > 0.0 && g.is_finite());
            prev = g;
        }
    }

    #[test]
    fn gain_matches_closed_form() {
        let pl = PowerLawPathLoss::new(2.0, 4.0, 1.0).unwrap();
        let d = 10.0;
        assert!((pl.gain(d) - 2.0 * d.powf(-4.0)).abs() < 1e-18);
    }

    #[test]
    fn distance_floor_caps_gain() {
        let pl = PowerLawPathLoss::new(1.0, 4.0, 1.0).unwrap();
        assert_eq!(pl.gain(0.0), pl.gain(1.0));
        assert_eq!(pl.gain(0.5), pl.gain(1.0));
    }

    #[test]
    fn path_loss_db_is_positive_beyond_reference() {
        let pl = PowerLawPathLoss::new(1.0, 4.0, 1.0).unwrap();
        // At 10 m with exponent 4, loss is 40 dB.
        assert!((pl.path_loss_db(10.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PowerLawPathLoss::new(0.0, 4.0, 1.0).is_err());
        assert!(PowerLawPathLoss::new(1.0, -1.0, 1.0).is_err());
        assert!(PowerLawPathLoss::new(1.0, 4.0, 0.0).is_err());
        assert!(PowerLawPathLoss::new(f64::NAN, 4.0, 1.0).is_err());
    }

    #[test]
    fn from_params_uses_paper_values() {
        let params = RadioParams::paper_defaults();
        let pl = PowerLawPathLoss::from_params(&params);
        assert_eq!(pl.antenna_gain, 1.0);
        assert_eq!(pl.exponent, 4.0);
        assert_eq!(pl.min_distance_m, 1.0);
    }
}
