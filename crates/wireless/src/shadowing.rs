//! Large-scale shadow fading (log-normal shadowing).
//!
//! The paper evaluates its placements under Rayleigh small-scale fading
//! only. Real deployments also see *shadowing* — slow, obstacle-induced
//! variations of the received power that are well modelled as log-normal
//! with a standard deviation of 4–8 dB in urban macro cells. This module
//! provides:
//!
//! * [`LogNormalShadowing`] — a unit-mean log-normal power gain, and
//! * [`ShadowedRayleigh`] — the composite channel (shadowing × Rayleigh)
//!
//! both implementing the [`Fading`] trait so they can be plugged into the
//! same evaluation path as the paper's Rayleigh model (see
//! `Scenario::hit_ratio_under` in `trimcaching-scenario` and the
//! `ablation-shadowing` experiment). The gains are normalised to unit mean
//! so that adding shadowing changes the *spread* of the channel, not its
//! average, keeping the comparison with the paper's setting fair.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channel::{Fading, RayleighFading};

/// Natural-log scale factor of a decibel: `ln(10) / 10`.
const DB_TO_NAT: f64 = core::f64::consts::LN_10 / 10.0;

/// Unit-mean log-normal shadow fading with a configurable dB spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalShadowing {
    sigma_db: f64,
}

impl LogNormalShadowing {
    /// Creates a shadowing process with the given standard deviation in dB.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or not finite.
    pub fn new(sigma_db: f64) -> Self {
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "shadowing spread must be a non-negative number of dB"
        );
        Self { sigma_db }
    }

    /// The typical urban-macro configuration (6 dB spread).
    pub fn urban_macro() -> Self {
        Self::new(6.0)
    }

    /// The configured standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Draws one standard normal variate via the Box–Muller transform
    /// (keeps the crate within the approved `rand` dependency, which does
    /// not ship a normal distribution by itself).
    fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

impl Default for LogNormalShadowing {
    fn default() -> Self {
        Self::urban_macro()
    }
}

impl Fading for LogNormalShadowing {
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma_db == 0.0 {
            return 1.0;
        }
        let sigma_nat = self.sigma_db * DB_TO_NAT;
        let z = Self::standard_normal(rng);
        // exp(σz − σ²/2) has unit mean for a log-normal variate.
        (sigma_nat * z - 0.5 * sigma_nat * sigma_nat).exp()
    }
}

/// Composite channel: log-normal shadowing multiplied by Rayleigh
/// small-scale fading. Unit mean when both components are unit mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowedRayleigh {
    shadowing: LogNormalShadowing,
    rayleigh: RayleighFading,
}

impl ShadowedRayleigh {
    /// Creates the composite channel from its two components.
    pub fn new(shadowing: LogNormalShadowing, rayleigh: RayleighFading) -> Self {
        Self {
            shadowing,
            rayleigh,
        }
    }

    /// Unit-mean Rayleigh fading behind `sigma_db` of log-normal shadowing.
    pub fn with_sigma_db(sigma_db: f64) -> Self {
        Self::new(LogNormalShadowing::new(sigma_db), RayleighFading::unit())
    }

    /// The shadowing component.
    pub fn shadowing(&self) -> LogNormalShadowing {
        self.shadowing
    }

    /// The Rayleigh component.
    pub fn rayleigh(&self) -> RayleighFading {
        self.rayleigh
    }
}

impl Default for ShadowedRayleigh {
    fn default() -> Self {
        Self::new(LogNormalShadowing::urban_macro(), RayleighFading::unit())
    }
}

impl Fading for ShadowedRayleigh {
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.shadowing.sample_power_gain(rng) * self.rayleigh.sample_power_gain(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean<F: Fading>(fading: &F, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| fading.sample_power_gain(&mut rng))
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn shadowing_gains_are_positive_and_unit_mean() {
        let shadowing = LogNormalShadowing::new(8.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(shadowing.sample_power_gain(&mut rng) > 0.0);
        }
        let mean = empirical_mean(&shadowing, 400_000, 2);
        assert!((mean - 1.0).abs() < 0.03, "empirical mean {mean}");
    }

    #[test]
    fn zero_spread_is_deterministic_unity() {
        let shadowing = LogNormalShadowing::new(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(shadowing.sample_power_gain(&mut rng), 1.0);
        }
        assert_eq!(shadowing.sigma_db(), 0.0);
    }

    #[test]
    fn larger_spread_means_larger_variance() {
        let narrow = LogNormalShadowing::new(2.0);
        let wide = LogNormalShadowing::new(10.0);
        let var = |f: &LogNormalShadowing, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..100_000)
                .map(|_| f.sample_power_gain(&mut rng))
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64
        };
        assert!(var(&wide, 5) > 3.0 * var(&narrow, 5));
    }

    #[test]
    fn composite_channel_is_roughly_unit_mean() {
        let composite = ShadowedRayleigh::with_sigma_db(6.0);
        let mean = empirical_mean(&composite, 400_000, 7);
        assert!((mean - 1.0).abs() < 0.05, "empirical mean {mean}");
        assert_eq!(composite.shadowing().sigma_db(), 6.0);
        assert_eq!(composite.rayleigh().mean_power_gain(), 1.0);
    }

    #[test]
    fn defaults_use_the_urban_macro_spread() {
        assert_eq!(LogNormalShadowing::default().sigma_db(), 6.0);
        assert_eq!(ShadowedRayleigh::default().shadowing().sigma_db(), 6.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_spread_panics() {
        let _ = LogNormalShadowing::new(-1.0);
    }
}
