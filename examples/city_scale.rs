//! City scale: a Poisson-deployed district on the coverage-pruned sparse
//! eligibility representation.
//!
//! Builds a ~200-server / 5 000-user district without ever allocating
//! the dense `M × K × I` eligibility cube, runs the CELF lazy greedy on
//! it, and prints how sparse the service-eligibility indicator actually
//! is at this scale.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

use std::time::Instant;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::placement::{TopPopularity, TrimCachingGenLazy};
use trimcaching::prelude::*;
use trimcaching::sim::CityScaleConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The usual parameter-sharing library (3 backbones x 8 models).
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(8)
        .build(2024);

    // 2. A 5 km x 5 km district: servers dropped by a Poisson point
    //    process at 8 /km² (~200 expected), 5 000 users, sparse
    //    eligibility forced (the district preset's default).
    let mut config = CityScaleConfig::district();
    config.capacity_gb = 0.5;
    let build_start = Instant::now();
    let scenario = config.generate(&library, 42, 0)?;
    let build_elapsed = build_start.elapsed();

    let eligibility = scenario.eligibility();
    let cells =
        scenario.num_servers() as f64 * scenario.num_users() as f64 * scenario.num_models() as f64;
    println!(
        "district: {} servers (λ·area = {:.0}), {} users, {} models — built in {build_elapsed:.2?}",
        scenario.num_servers(),
        config.expected_servers(),
        scenario.num_users(),
        scenario.num_models(),
    );
    println!(
        "eligibility: {} of {:.1}M triples eligible (density {:.4}), \
         representation = {:?}",
        eligibility.num_eligible(),
        cells / 1e6,
        eligibility.density(),
        scenario.eligibility_repr(),
    );

    // 3. Placement: CELF lazy greedy against the popularity baseline.
    for outcome in [
        TrimCachingGenLazy::new().place(&scenario)?,
        TopPopularity::new().place(&scenario)?,
    ] {
        println!(
            "{:<22} hit ratio {:.4}  ({} gain evaluations, {:.2?})",
            outcome.algorithm, outcome.hit_ratio, outcome.evaluations, outcome.runtime,
        );
    }
    Ok(())
}
