//! Durable serving: journal, checkpoint, kill, resume — byte identical.
//!
//! A serving run is a pure function of its scenario, policy, seed and
//! workload; the `runtime::persist` subsystem makes that purity survive
//! a crash. This example runs the same simulation three ways:
//!
//! 1. **uninterrupted** — the reference run, journaled to disk;
//! 2. **killed and resumed** — the identical run stopped cold mid-way
//!    (the engine is simply dropped, as a crash would), then resumed
//!    from the latest slot-boundary checkpoint: the journal suffix past
//!    the checkpoint is replayed and verified, and the run continues to
//!    the same final report and the same journal bytes;
//! 3. **forked** — the mid-run checkpoint re-opened under a *different*
//!    eviction policy: identical past, deterministically diverging
//!    future — an A/B experiment for the price of a file copy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example durable_run
//! ```

use std::path::PathBuf;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::runtime::{read_journal, recompute_metrics, PersistConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A compact scenario: tight capacity so the eviction policy has
    //    real work to do, mobility and the control loop both on so the
    //    checkpoints carry every stateful subsystem.
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(4)
        .build(2024);
    let scenario = TopologyConfig::paper_defaults()
        .with_users(15)
        .with_capacity_gb(0.3)
        .generate(&library, 2024, 0)?;

    let scratch = std::env::temp_dir().join(format!("trimcaching-durable-{}", std::process::id()));
    let dir_a: PathBuf = scratch.join("uninterrupted");
    let dir_b: PathBuf = scratch.join("killed");
    std::fs::remove_dir_all(&scratch).ok();

    let config = |dir: &PathBuf| {
        ServeConfig::paper_defaults()
            .with_duration_s(600.0)
            .with_request_rate_hz(0.2)
            .with_seed(7)
            .with_mobility_slot_s(5.0)
            .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
            .with_persist(PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0))
    };

    // 2. The uninterrupted reference: 600 simulated seconds, journaled,
    //    checkpointed every 60 s.
    let reference = ServeEngine::new(&scenario, &CostAwareLfu, config(&dir_a))?.run()?;
    println!(
        "uninterrupted : {} requests, hit ratio {:.4}, p95 {:.0} ms",
        reference.metrics.requests,
        reference.metrics.hit_ratio(),
        reference.metrics.p95_latency_s().unwrap_or(0.0) * 1e3,
    );

    // 3. The same run, killed cold at t = 217.3 s — dropping the engine
    //    mid-flight is exactly what a crash does. The journal keeps the
    //    served events past the last checkpoint; the checkpoint keeps
    //    the full engine state at t = 180 s.
    ServeEngine::new(&scenario, &CostAwareLfu, config(&dir_b))?.run_until(217.3)?;
    // Keep the mid-run checkpoint for step 6 — the resume below will
    // keep checkpointing and overwrite it with later ones.
    let fork_point = scratch.join("fork.tcp");
    std::fs::copy(dir_b.join("checkpoint.tcp"), &fork_point)?;

    // 4. Resume: re-open the artefacts, replay and verify the journal
    //    suffix, continue to the end.
    let resumed =
        ServeEngine::resume(&scenario, &CostAwareLfu, config(&dir_b).persist.unwrap())?.run()?;
    assert_eq!(resumed, reference, "resume must be invisible in the report");
    let journal_a = std::fs::read(dir_a.join("journal.tcj"))?;
    let journal_b = std::fs::read(dir_b.join("journal.tcj"))?;
    assert_eq!(journal_a, journal_b, "and invisible on disk");
    println!(
        "killed+resumed: identical report, identical journal ({} bytes)",
        journal_b.len()
    );

    // 5. Offline analysis: the journal alone recomputes the run's
    //    request-level metrics bit-for-bit — no scenario, no replay.
    let (header, records) = read_journal(&dir_a.join("journal.tcj"))?;
    let offline = recompute_metrics(&header, &records);
    assert_eq!(offline.requests, reference.metrics.requests);
    assert_eq!(
        offline.p95_latency_s().map(f64::to_bits),
        reference.metrics.p95_latency_s().map(f64::to_bits),
    );
    println!(
        "journal-stats : seed {}, {} records, hit ratio {:.4} (recomputed offline)",
        header.seed,
        records.len(),
        offline.hit_ratio()
    );

    // 6. A/B fork: the killed run's checkpoint (t = 180 s) re-opened
    //    under plain LRU. Same past, different policy, diverging future
    //    — and both futures are themselves deterministic.
    let fork_lru = ServeEngine::fork(&scenario, &Lru, &fork_point)?.run()?;
    let fork_again = ServeEngine::fork(&scenario, &Lru, &fork_point)?.run()?;
    assert_eq!(fork_lru, fork_again, "forks are deterministic");
    assert_ne!(
        fork_lru.metrics, reference.metrics,
        "a different policy writes a different future"
    );
    println!(
        "fork (lru)    : hit ratio {:.4} vs {:.4} under cost-aware — \
         same checkpoint, diverging futures",
        fork_lru.metrics.hit_ratio(),
        reference.metrics.hit_ratio(),
    );

    std::fs::remove_dir_all(&scratch).ok();
    Ok(())
}
