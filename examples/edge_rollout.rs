//! Operator-style capacity planning: how much storage do edge servers in a
//! city district need to hit a target cache hit ratio?
//!
//! This example sweeps the per-server storage capacity for a district with
//! 10 base stations and 40 subscribers, compares sharing-aware placement
//! (TrimCaching Gen) against a sharing-oblivious cache, and reports the
//! smallest capacity at which each strategy reaches a 90% hit-ratio target
//! — the kind of answer a network operator needs before a hardware
//! roll-out.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example edge_rollout
//! ```

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;

const TARGET_HIT_RATIO: f64 = 0.9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(11);
    let mc = MonteCarloConfig {
        topologies: 5,
        fading_realisations: 50,
        seed: 11,
        threads: 0,
    };

    let gen = TrimCachingGen::new();
    let independent = IndependentCaching::new();
    let algorithms: Vec<&(dyn PlacementAlgorithm + Sync)> = vec![&gen, &independent];

    println!(
        "{:<10} {:>18} {:>22}",
        "Q (GB)", "TrimCaching Gen", "Independent Caching"
    );
    let mut first_reach: [Option<f64>; 2] = [None, None];
    for q in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let topology = TopologyConfig::paper_defaults()
            .with_users(40)
            .with_capacity_gb(q);
        let samples = trimcaching::sim::evaluate_algorithms(&library, &topology, &algorithms, &mc)?;
        let hits: Vec<f64> = samples.iter().map(|s| s.hit_ratio().mean).collect();
        println!("{:<10.2} {:>18.4} {:>22.4}", q, hits[0], hits[1]);
        for (slot, hit) in first_reach.iter_mut().zip(&hits) {
            if slot.is_none() && *hit >= TARGET_HIT_RATIO {
                *slot = Some(q);
            }
        }
    }

    println!(
        "\nsmallest capacity reaching a {:.0}% hit ratio:",
        TARGET_HIT_RATIO * 100.0
    );
    for (name, reach) in ["TrimCaching Gen", "Independent Caching"]
        .iter()
        .zip(&first_reach)
    {
        match reach {
            Some(q) => println!("  {name:<22} {q:.2} GB per edge server"),
            None => println!("  {name:<22} not reached within the swept range"),
        }
    }
    println!(
        "\nParameter sharing lets the operator hit the target with less storage\n\
         per site — that difference is the hardware cost the TrimCaching\n\
         placement saves at roll-out time."
    );
    Ok(())
}
