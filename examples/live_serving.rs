//! Live serving demo: replay online request traffic against a
//! TrimCaching placement.
//!
//! Builds the paper's default topology, solves the offline placement
//! with TrimCaching Gen, then serves ten minutes of Poisson traffic
//! (with users moving every 5 s) through `trimcaching-runtime` under
//! three online eviction policies — once cold-started and once
//! warm-started from the offline placement.
//!
//! Run with: `cargo run --release --example live_serving`

use trimcaching::placement::{PlacementAlgorithm, TrimCachingGen};
use trimcaching::prelude::*;
use trimcaching::runtime::{serve, CostAwareLfu, EvictionPolicy, Lfu, Lru, ServeConfig};
use trimcaching::sim::experiments::{LibraryKind, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = RunConfig::reduced();
    let library = run.build_library(LibraryKind::Special);
    println!(
        "library: {} models, {:.1} MB deduplicated ({:.0}% saved by sharing)",
        library.num_models(),
        library.total_unique_bytes() as f64 / 1e6,
        library.sharing_savings_ratio() * 100.0
    );

    // A quarter of the paper's default capacity: tight enough that the
    // caches churn and the eviction policies actually differ.
    let scenario = TopologyConfig::paper_defaults()
        .with_capacity_gb(0.25)
        .generate(&library, 2024, 0)?;
    let placement = TrimCachingGen::new().place(&scenario)?;
    println!(
        "offline TrimCaching-Gen placement: expected hit ratio {:.4}\n",
        placement.hit_ratio
    );

    let config = ServeConfig::paper_defaults()
        .with_mobility_slot_s(5.0)
        .with_seed(7);
    println!(
        "serving {:.0} s of traffic, {} users x {:.2} Hz, mobility every {:.0} s:\n",
        config.duration_s,
        scenario.num_users(),
        config.request_rate_hz,
        config.mobility_slot_s
    );

    println!(
        "| policy | start | hit ratio | block hit ratio | p50 | p95 | p99 | stored (MB) | \
         wire (MB) | evictions | handovers |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for policy in [&Lru as &dyn EvictionPolicy, &Lfu, &CostAwareLfu] {
        for (label, warm) in [("cold", None), ("warm", Some(&placement.placement))] {
            let report = serve(&scenario, policy, warm, &config)?;
            let m = &report.metrics;
            let q = |v: Option<f64>| {
                v.map(|s| format!("{:.0} ms", s * 1e3))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "| {} | {} | {:.4} | {:.4} | {} | {} | {} | {:.1} | {:.1} | {} | {} |",
                report.policy,
                label,
                m.hit_ratio(),
                m.block_hit_ratio(),
                q(m.p50_latency_s()),
                q(m.p95_latency_s()),
                q(m.p99_latency_s()),
                m.bytes_downloaded as f64 / 1e6,
                m.backhaul_bytes_moved as f64 / 1e6,
                m.evictions,
                m.handovers,
            );
        }
    }

    let report = serve(&scenario, &CostAwareLfu, None, &config)?;
    println!("\ncost-aware cold-start windowed hit ratio:");
    for w in report.metrics.windows() {
        println!(
            "  t = {:>4.0} s  {:>5} req  hit ratio {:.4}",
            w.end_s,
            w.requests,
            w.hit_ratio()
        );
    }
    Ok(())
}
