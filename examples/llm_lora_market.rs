//! LoRA-adapter marketplace: caching a foundation model plus hundreds of
//! small task adapters at the edge.
//!
//! The paper motivates parameter sharing with PEFT/LoRA: downstream LLMs
//! freeze more than 99% of their parameters and differ only in tiny
//! adapters. This example builds such a library from scratch with a custom
//! backbone — one 6 GB foundation model whose entire body is frozen, plus
//! 200 per-tenant adapters of a few tens of megabytes — and shows that a
//! sharing-aware edge cache serves almost the whole catalogue from an 8 GB
//! server, while a sharing-oblivious cache fits only one tenant.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example llm_lora_market
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tenants = 200;
    // The marketplace preset: one ≈6 GB foundation split into 32 shared
    // transformer blocks, plus a ~35 MB LoRA adapter and ~5 MB head per
    // tenant model.
    let library = LoraLibraryBuilder::marketplace()
        .adapters_per_foundation(tenants)
        .build(42);
    println!("LoRA marketplace: {}", LibraryStats::compute(&library));

    // A single well-provisioned metro edge site with 8 GB of model storage
    // and 30 active users.
    let mut rng = StdRng::seed_from_u64(5);
    let area = DeploymentArea::new(400.0)?;
    let users: Vec<Point> = (0..30).map(|_| area.sample_uniform(&mut rng)).collect();
    let demand = DemandConfig {
        // Tenants' popularity is heavily skewed, as app stores usually are.
        zipf_exponent: 1.1,
        // Installing a multi-gigabyte on-device assistant is not the paper's
        // sub-second model download: users tolerate a couple of minutes, and
        // inference on an LLM takes on the order of seconds. (At the paper's
        // radio parameters a 6 GB body downloads in ~1-2 minutes.)
        deadline_range_s: (120.0, 240.0),
        inference_range_s: (0.5, 2.0),
        ..DemandConfig::paper_defaults()
    }
    .generate(30, library.num_models(), &mut rng)?;
    let scenario = Scenario::builder()
        .library(library)
        .servers(vec![EdgeServer::new(
            ServerId(0),
            Point::new(200.0, 200.0),
            gigabytes(8.0),
        )?])
        .users_at(&users)
        .demand(demand)
        .build()?;

    let gen = TrimCachingGen::new().place(&scenario)?;
    let independent = IndependentCaching::new().place(&scenario)?;

    println!(
        "\n{:<22} {:>14} {:>16}",
        "algorithm", "hit ratio", "tenants cached"
    );
    for outcome in [&gen, &independent] {
        println!(
            "{:<22} {:>14.4} {:>16}",
            outcome.algorithm,
            outcome.hit_ratio,
            outcome.placement.len()
        );
    }
    println!(
        "\nWith one 6 GB foundation body stored once, the sharing-aware cache\n\
         serves {} of {} tenants from a single 8 GB edge server; the\n\
         sharing-oblivious cache pays the full 6 GB per tenant and fits {}.",
        gen.placement.len(),
        tenants,
        independent.placement.len()
    );
    Ok(())
}
