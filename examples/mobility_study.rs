//! Mobility robustness: how fast does a placement go stale as users move?
//!
//! Reproduces the spirit of the paper's Fig. 7 as a runnable example: a
//! placement is computed once for the initial snapshot, users then move for
//! two hours (pedestrian / bike / vehicle mix), and the *unchanged*
//! placement is re-evaluated every 20 minutes. The output shows the hit
//! ratio degrading only mildly, which is the paper's argument that model
//! replacement does not need to be re-run frequently.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mobility_study
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::scenario::mobility::{MobilityModel, PAPER_SLOT_SECONDS};
use trimcaching::wireless::geometry::DeploymentArea;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(3);
    let topology = TopologyConfig::paper_defaults().with_users(10);
    let scenario = topology.generate(&library, 3, 0)?;

    let spec = TrimCachingSpec::new().place(&scenario)?;
    let gen = TrimCachingGen::new().place(&scenario)?;
    println!(
        "initial hit ratios — spec: {:.4}, gen: {:.4}",
        spec.hit_ratio, gen.hit_ratio
    );

    let area = DeploymentArea::paper_default();
    let initial: Vec<_> = scenario.users().iter().map(|u| u.position()).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let mut mobility = MobilityModel::paper_mix(&initial, area, &mut rng);

    println!(
        "\n{:>10} {:>18} {:>18} {:>16}",
        "time (min)", "spec hit ratio", "gen hit ratio", "users refreshed"
    );
    println!(
        "{:>10} {:>18.4} {:>18.4} {:>16}",
        0, spec.hit_ratio, gen.hit_ratio, "-"
    );
    let interval_min = 20usize;
    let slots_per_interval = (interval_min as f64 * 60.0 / PAPER_SLOT_SECONDS) as usize;
    let mut spec_final = spec.hit_ratio;
    let mut gen_final = gen.hit_ratio;
    // One snapshot evolved in place: each sample applies the accumulated
    // moves through the incremental delta path instead of rebuilding the
    // whole scenario (`Scenario::update_user_positions` is bit-identical
    // to `with_user_positions`, at a cost proportional to what changed).
    let mut moved = scenario.clone();
    for step in 1..=6 {
        let positions = mobility.run_slots(slots_per_interval, &mut rng);
        let delta = moved.update_user_positions(&positions)?;
        spec_final = moved.hit_ratio(&spec.placement);
        gen_final = moved.hit_ratio(&gen.placement);
        println!(
            "{:>10} {:>18.4} {:>18.4} {:>16}",
            step * interval_min,
            spec_final,
            gen_final,
            delta.refreshed_users().len()
        );
    }

    println!(
        "\nafter 2 h the stale placements lost {:.1}% (spec) and {:.1}% (gen) of their\n\
         initial hit ratio — in the same few-percent band the paper reports, so a\n\
         re-placement every couple of hours is enough.",
        (spec.hit_ratio - spec_final) / spec.hit_ratio.max(1e-9) * 100.0,
        (gen.hit_ratio - gen_final) / gen.hit_ratio.max(1e-9) * 100.0
    );
    Ok(())
}
