//! Online re-placement: the in-runtime control loop under demand drift.
//!
//! The paper notes that the operator can re-run the placement "when the
//! performance degrades to a certain threshold" (Section IV-A). Earlier
//! revisions of this example quantified that loop with *offline*
//! snapshot replays (`sim::replacement`); it now drives the real thing:
//! the `runtime::control` subsystem closing the loop *inside* a live
//! serving run. A popularity flip hits mid-run; the controller estimates
//! the new demand from the requests it serves, detects the hit-ratio
//! drift, re-solves the placement with the shared-block-aware lazy
//! greedy and stages the delta as block-granular backhaul fills — and
//! the printout shows what that buys over the frozen placement: replan
//! count, hit-ratio recovery time, and the reconfiguration bytes paid.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_replacement
//! ```

use trimcaching::prelude::*;
use trimcaching::runtime::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(7);
    println!("model library: {}", LibraryStats::compute(&library));

    // The paper footprint with tight caches and a *shared* popularity
    // ranking, so the flip moves the whole population coherently.
    let mut topology = TopologyConfig::paper_defaults().with_capacity_gb(0.25);
    topology.demand.personalised_popularity = false;
    let scenario = topology.generate(&library, 7, 0)?;

    // Thirty simulated minutes; the popularity ranking flips at minute
    // ten (model i inherits the demand of model i + I/2).
    let shift_s = 600.0;
    let base = scenario.demand();
    let flipped = rotate_popularity(base, scenario.num_models() / 2)?;
    let workload = Workload::piecewise(&[(0.0, base), (shift_s, &flipped)], 0.2)?;
    let initial = TrimCachingGenLazy::new().place(&scenario)?.placement;

    let config = ServeConfig::paper_defaults()
        .with_duration_s(1800.0)
        .with_request_rate_hz(0.2)
        .with_seed(17);
    let control = ControlConfig {
        tick_s: 30.0,
        min_observed_requests: 300,
        drift: DriftConfig {
            cooldown_s: 180.0,
            ..DriftConfig::paper_defaults()
        },
        ..ControlConfig::paper_defaults()
    };

    let static_run =
        serve_with_workload(&scenario, &CostAwareLfu, Some(&initial), &config, &workload)?;
    let adaptive_run = serve_with_workload(
        &scenario,
        &CostAwareLfu,
        Some(&initial),
        &config.with_control(control),
        &workload,
    )?;

    println!("\n{:>10} {:>16} {:>16}", "time (s)", "static", "controller");
    for (s, a) in static_run
        .metrics
        .windows()
        .iter()
        .zip(adaptive_run.metrics.windows())
    {
        let marker = if s.end_s == shift_s { "  <- flip" } else { "" };
        println!(
            "{:>10} {:>16.4} {:>16.4}{marker}",
            s.end_s,
            s.hit_ratio(),
            a.hit_ratio()
        );
    }

    let sm = &static_run.metrics;
    let am = &adaptive_run.metrics;
    println!(
        "\nstatic placement:   hit ratio {:.4}, backhaul {:.2} GB",
        sm.hit_ratio(),
        sm.backhaul_bytes_moved as f64 / 1e9
    );
    println!(
        "online controller:  hit ratio {:.4}, backhaul {:.2} GB \
         ({:.2} GB reconfiguration)",
        am.hit_ratio(),
        am.backhaul_bytes_moved as f64 / 1e9,
        am.reconcile_bytes_moved as f64 / 1e9
    );
    println!(
        "controller activity: {} control ticks, {} replans ({} drift-triggered), \
         {} staged fills, {} reconcile evictions",
        am.control_ticks,
        am.replans_triggered,
        am.replans_drift,
        am.reconcile_fills_started,
        am.reconcile_evictions
    );
    if am.recoveries > 0 {
        println!(
            "hit-ratio recovery:  {:.0} s after the replan (mean over {} recoveries)",
            am.mean_recovery_s(),
            am.recoveries
        );
    }
    println!(
        "\nThe frozen placement keeps serving yesterday's catalogue after the flip;\n\
         the controller pays a bounded burst of reconfiguration traffic to\n\
         re-converge on the observed demand and ends the run ahead on hit ratio."
    );
    Ok(())
}
