//! Online re-placement: when is it worth re-running TrimCaching?
//!
//! The paper solves the placement on a snapshot of user positions and notes
//! that the operator can simply re-run it "when the performance degrades to
//! a certain threshold" (Section IV-A). This example quantifies that loop:
//! it replays two hours of user mobility twice over the same topology —
//! once keeping the initial placement (the Fig. 7 setting) and once with a
//! 5% degradation trigger — and reports the hit ratio over time, how often
//! the trigger fired, and how many gigabytes had to be pushed over the
//! backbone to realise the re-placements.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_replacement
//! ```

use trimcaching::prelude::*;
use trimcaching::sim::replacement::replay_with_policy;
use trimcaching::wireless::geometry::DeploymentArea;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(7);
    println!("model library: {}", LibraryStats::compute(&library));

    let topology = TopologyConfig::paper_defaults().with_users(10);
    let scenario = topology.generate(&library, 7, 0)?;
    let area = DeploymentArea::paper_default();
    let algorithm = TrimCachingGen::new();
    let replay = ReplayConfig {
        total_minutes: 120,
        sample_interval_minutes: 20,
        fading_realisations: 50,
    };

    let static_trace = replay_with_policy(&scenario, area, &algorithm, None, &replay, 17, 23)?;
    let policy = ReplacementPolicy::five_percent();
    let adaptive_trace =
        replay_with_policy(&scenario, area, &algorithm, Some(&policy), &replay, 17, 23)?;

    println!(
        "\n{:>10} {:>16} {:>16}",
        "time (min)", "static", "adaptive (5%)"
    );
    for (idx, t) in static_trace.times_min.iter().enumerate() {
        println!(
            "{:>10} {:>16.4} {:>16.4}",
            t, static_trace.hit_ratios[idx], adaptive_trace.hit_ratios[idx]
        );
    }

    println!(
        "\nstatic placement:   mean hit ratio {:.4}, degradation over 2 h {:.1}%",
        static_trace.mean_hit_ratio(),
        100.0 * static_trace.relative_degradation()
    );
    println!(
        "adaptive placement: mean hit ratio {:.4}, {} re-placements, {:.2} GB migrated",
        adaptive_trace.mean_hit_ratio(),
        adaptive_trace.replacements,
        adaptive_trace.migrated_bytes as f64 / 1e9
    );
    println!(
        "\nThe stale placement stays within a few percent of its initial hit ratio —\n\
         the paper's Fig. 7 argument — so the 5% trigger fires rarely and the backbone\n\
         cost of keeping the cache fresh stays small."
    );
    Ok(())
}
