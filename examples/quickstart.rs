//! Quickstart: build a small multi-edge scenario, run all three placement
//! algorithms and compare their expected cache hit ratios.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A parameter-sharing model library: 30 downstream models derived
    //    from three ResNet-like backbones by bottom-layer freezing.
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(2024);
    println!(
        "library: {} models, {} parameter blocks, {:.1}% of bytes saved by sharing",
        library.num_models(),
        library.num_blocks(),
        library.sharing_savings_ratio() * 100.0
    );

    // 2. A network snapshot: 4 edge servers with 1 GB of model storage each
    //    and 20 users dropped uniformly over 1 km².
    let mut rng = StdRng::seed_from_u64(7);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = vec![
        Point::new(250.0, 250.0),
        Point::new(750.0, 250.0),
        Point::new(250.0, 750.0),
        Point::new(750.0, 750.0),
    ]
    .into_iter()
    .enumerate()
    .map(|(m, p)| EdgeServer::new(ServerId(m), p, gigabytes(1.0)))
    .collect::<Result<_, _>>()?;
    let users: Vec<Point> = (0..20).map(|_| area.sample_uniform(&mut rng)).collect();
    let demand = DemandConfig::paper_defaults().generate(20, library.num_models(), &mut rng)?;
    let scenario = Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .build()?;

    // 3. Run the three algorithms of the paper and report their outcomes.
    let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
        Box::new(TrimCachingSpec::new()),
        Box::new(TrimCachingGen::new()),
        Box::new(IndependentCaching::new()),
    ];
    println!(
        "\n{:<22} {:>14} {:>14} {:>12}",
        "algorithm", "hit ratio", "models cached", "runtime"
    );
    for algorithm in &algorithms {
        let outcome = algorithm.place(&scenario)?;
        println!(
            "{:<22} {:>14.4} {:>14} {:>10.2?}",
            outcome.algorithm,
            outcome.hit_ratio,
            outcome.placement.len(),
            outcome.runtime
        );
    }

    // 4. Evaluate the Spec placement under Rayleigh fading, as the paper
    //    does for every reported point.
    let spec = TrimCachingSpec::new().place(&scenario)?;
    let mut fading_rng = StdRng::seed_from_u64(99);
    let faded = scenario.average_hit_ratio_under_fading(&spec.placement, 200, &mut fading_rng)?;
    println!(
        "\nTrimCaching Spec: expected-rate hit ratio {:.4}, Rayleigh-averaged {:.4}",
        spec.hit_ratio, faded
    );
    Ok(())
}
