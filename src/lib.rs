//! # TrimCaching — parameter-sharing AI model caching in wireless edge networks
//!
//! A Rust reproduction of *"TrimCaching: Parameter-sharing AI Model Caching
//! in Wireless Edge Networks"* (Qu, Lin, Liu, Chen, Huang — ICDCS 2024).
//!
//! TrimCaching places AI models on wireless edge servers to maximise the
//! cache hit ratio of model-download requests under per-request latency
//! budgets, exploiting the fact that fine-tuned models share parameter
//! blocks (frozen backbones, LoRA bases, ...) which only need to be stored
//! once per server.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! * [`wireless`] — radio substrate (geometry, Shannon rates, Rayleigh
//!   fading, backhaul, coverage);
//! * [`modellib`] — parameter-sharing model libraries and their builders;
//! * [`scenario`] — the system model (demand, latency, storage, objective,
//!   mobility, scenarios) with dense and coverage-pruned sparse
//!   eligibility representations behind one `EligibilityView` trait;
//! * [`placement`] — the TrimCaching Spec / Gen algorithms, the
//!   Independent Caching baseline and the exhaustive-search reference;
//! * [`runtime`] — the event-driven online serving engine: Poisson
//!   request streams (optionally piecewise non-stationary) replayed
//!   against placements, per-server caches with block-granular
//!   residency under shared-block-aware eviction policies, cache fills
//!   pipelined as block transfers over congestion-aware backhaul links
//!   (whole-model fills remain as a compatibility baseline), mobility
//!   with server handover, an **online re-placement controller**
//!   (`runtime::control`: EWMA demand estimation, drift detection,
//!   estimated-demand re-plans, staged cache reconciliation), and
//!   streaming metrics (windowed hit ratio, block hit ratio, backhaul
//!   bytes moved, re-plan/recovery counters, latency percentiles), and
//!   **durable runs** (`runtime::persist`: an append-only CRC-framed
//!   journal of served requests plus slot-boundary checkpoints, with
//!   byte-identical `ServeEngine::resume` after a kill anywhere and
//!   `ServeEngine::fork` for A/B futures of one checkpoint);
//! * [`sim`] — the simulation harness regenerating every figure of the
//!   paper's evaluation, plus the online `serve` experiments.
//!
//! # Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use trimcaching::modellib::builders::SpecialCaseBuilder;
//! use trimcaching::placement::{PlacementAlgorithm, TrimCachingSpec};
//! use trimcaching::scenario::prelude::*;
//! use trimcaching::wireless::geometry::{DeploymentArea, Point};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A parameter-sharing model library (three ResNet-like backbones).
//! let library = SpecialCaseBuilder::paper_setup().models_per_backbone(3).build(1);
//!
//! // 2. A network snapshot: two edge servers, a handful of users.
//! let mut rng = StdRng::seed_from_u64(42);
//! let area = DeploymentArea::paper_default();
//! let users: Vec<Point> = (0..10).map(|_| area.sample_uniform(&mut rng)).collect();
//! let demand = DemandConfig::paper_defaults().generate(10, library.num_models(), &mut rng)?;
//! let scenario = Scenario::builder()
//!     .library(library)
//!     .servers(vec![
//!         EdgeServer::new(ServerId(0), Point::new(300.0, 500.0), gigabytes(1.0))?,
//!         EdgeServer::new(ServerId(1), Point::new(700.0, 500.0), gigabytes(1.0))?,
//!     ])
//!     .users_at(&users)
//!     .demand(demand)
//!     .build()?;
//!
//! // 3. Place models and read off the expected cache hit ratio.
//! let outcome = TrimCachingSpec::new().place(&scenario)?;
//! assert!(outcome.hit_ratio > 0.0 && outcome.hit_ratio <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trimcaching_modellib as modellib;
pub use trimcaching_placement as placement;
pub use trimcaching_runtime as runtime;
pub use trimcaching_scenario as scenario;
pub use trimcaching_sim as sim;
pub use trimcaching_wireless as wireless;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use trimcaching_modellib::builders::{
        GeneralCaseBuilder, LoraLibraryBuilder, SpecialCaseBuilder,
    };
    pub use trimcaching_modellib::{BlockId, LibraryStats, ModelId, ModelLibrary, ZipfPopularity};
    pub use trimcaching_placement::{
        ExhaustiveSearch, GammaBound, IndependentCaching, PlacementAlgorithm, PlacementOutcome,
        RandomPlacement, TopPopularity, TrimCachingGen, TrimCachingGenLazy, TrimCachingSpec,
    };
    pub use trimcaching_runtime::{
        rotate_popularity, serve, serve_ensemble, serve_with_workload, ControlConfig, CostAwareLfu,
        DriftConfig, EvictionPolicy, FillGranularity, Lfu, Lru, PersistConfig, PopularityShift,
        ServeConfig, ServeEngine, ServeReport, Workload,
    };
    pub use trimcaching_scenario::prelude::*;
    pub use trimcaching_sim::{
        CityScaleConfig, ComparisonTable, ExperimentTable, MonteCarloConfig, ReplacementPolicy,
        ReplacementTrace, ReplayConfig, TopologyConfig,
    };
    pub use trimcaching_wireless::{
        DeploymentArea, LogNormalShadowing, Point, RadioParams, ShadowedRayleigh,
    };
}
