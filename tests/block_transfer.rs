//! Integration tests of the block-granular transfer pipeline: parameter
//! sharing must pay off on the backhaul wire (not just in storage), the
//! whole-model compatibility mode must coincide with block granularity
//! on libraries without sharing, and block-granular runs must be
//! byte-identical across identical seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::{ModelId, ModelLibrary};
use trimcaching::prelude::*;
use trimcaching::runtime::{serve, CostAwareLfu, FillGranularity, Lru, ServeConfig, ServeReport};
use trimcaching::wireless::geometry::{DeploymentArea, Point};

const BACKBONE_BYTES: u64 = 80_000_000;
const HEAD_BYTES: u64 = 20_000_000;

/// Four models sharing one 80 MB backbone, each adding a 20 MB head.
fn shared_library() -> ModelLibrary {
    let mut b = ModelLibrary::builder();
    for i in 0..4 {
        b.add_model_with_blocks(
            format!("shared/m{i}"),
            "t",
            &[
                ("backbone".into(), BACKBONE_BYTES),
                (format!("m{i}/head"), HEAD_BYTES),
            ],
        )
        .unwrap();
    }
    b.build().unwrap()
}

/// Four models of exactly the same sizes with no common blocks.
fn disjoint_library() -> ModelLibrary {
    let mut b = ModelLibrary::builder();
    for i in 0..4 {
        b.add_model_with_blocks(
            format!("disjoint/m{i}"),
            "t",
            &[
                (format!("m{i}/backbone"), BACKBONE_BYTES),
                (format!("m{i}/head"), HEAD_BYTES),
            ],
        )
        .unwrap();
    }
    b.build().unwrap()
}

/// The same two-server snapshot over either library (the libraries have
/// identical model counts and sizes, so the demand and radio state are
/// bitwise identical — only block sharing differs).
fn scenario(library: ModelLibrary) -> Scenario {
    let mut rng = StdRng::seed_from_u64(99);
    let area = DeploymentArea::paper_default();
    let positions: Vec<Point> = (0..16).map(|_| area.sample_uniform(&mut rng)).collect();
    let demand = DemandConfig::paper_defaults()
        .generate(16, library.num_models(), &mut rng)
        .unwrap();
    Scenario::builder()
        .library(library)
        .servers(vec![
            EdgeServer::new(ServerId(0), Point::new(300.0, 500.0), gigabytes(0.5)).unwrap(),
            EdgeServer::new(ServerId(1), Point::new(700.0, 500.0), gigabytes(0.5)).unwrap(),
        ])
        .users_at(&positions)
        .demand(demand)
        .build()
        .unwrap()
}

fn config() -> ServeConfig {
    // A 1 Gbps ingest link makes every fill take a visible fraction of
    // a second (80 MB backbone ≈ 0.64 s uncontended).
    ServeConfig::smoke()
        .with_seed(7)
        .with_cloud_ingest_bps(1.0e9)
}

#[test]
fn shared_blocks_fill_faster_and_move_fewer_bytes_than_disjoint() {
    let shared = serve(&scenario(shared_library()), &CostAwareLfu, None, &config()).unwrap();
    let disjoint = serve(
        &scenario(disjoint_library()),
        &CostAwareLfu,
        None,
        &config(),
    )
    .unwrap();
    let (s, d) = (&shared.metrics, &disjoint.metrics);
    assert!(s.requests > 0 && d.requests > 0);
    assert!(s.transfers_started > 0 && d.transfers_started > 0);
    // Once the backbone is resident, every further fill moves only a
    // 20 MB head instead of the full 100 MB artifact: strictly fewer
    // wire bytes...
    assert!(
        s.backhaul_bytes_moved < d.backhaul_bytes_moved,
        "shared {} must move fewer backhaul bytes than disjoint {}",
        s.backhaul_bytes_moved,
        d.backhaul_bytes_moved
    );
    // ...and strictly faster fills on the same link.
    assert!(
        s.mean_transfer_s() < d.mean_transfer_s(),
        "shared fills ({:.3} s mean) must be faster than disjoint ({:.3} s mean)",
        s.mean_transfer_s(),
        d.mean_transfer_s()
    );
    // Partial residency shows up in the block hit ratio even when the
    // model-level hit misses.
    assert!(s.block_hit_ratio() >= s.hit_ratio());
}

#[test]
fn disjoint_library_moves_equal_bytes_across_granularities() {
    // Without shared blocks the wire bytes of every fill coincide
    // (missing blocks == the whole model), so the two granularities
    // produce identical event timelines — metrics and final caches are
    // equal, not merely close.
    let s = scenario(disjoint_library());
    let block = serve(&s, &Lru, None, &config()).unwrap();
    let whole = serve(
        &s,
        &Lru,
        None,
        &config().with_granularity(FillGranularity::WholeModel),
    )
    .unwrap();
    assert_eq!(block.metrics, whole.metrics);
    assert_eq!(block.final_caches, whole.final_caches);
    assert_eq!(
        block.metrics.backhaul_bytes_moved,
        whole.metrics.backhaul_bytes_moved
    );
}

#[test]
fn shared_library_moves_strictly_fewer_bytes_than_whole_model() {
    let s = scenario(shared_library());
    let block = serve(&s, &CostAwareLfu, None, &config()).unwrap();
    let whole = serve(
        &s,
        &CostAwareLfu,
        None,
        &config().with_granularity(FillGranularity::WholeModel),
    )
    .unwrap();
    assert!(
        block.metrics.backhaul_bytes_moved < whole.metrics.backhaul_bytes_moved,
        "block fills ({}) must move strictly fewer bytes than whole-model fills ({})",
        block.metrics.backhaul_bytes_moved,
        whole.metrics.backhaul_bytes_moved
    );
}

#[test]
fn block_runs_are_byte_identical_across_identical_seeds() {
    let s = scenario(shared_library());
    let run = |seed: u64| -> ServeReport {
        let config = config().with_seed(seed).with_congestion_aware(true);
        serve(&s, &CostAwareLfu, None, &config).unwrap()
    };
    let a = run(2024);
    let b = run(2024);
    assert_eq!(a, b);
    // Byte-identical down to the rendered representation (field order,
    // histogram buckets, windowed trace, final caches).
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_ne!(run(2025).metrics, a.metrics, "different seeds must differ");
}

#[test]
fn overlap_size_reports_the_wire_savings() {
    let shared = shared_library();
    let disjoint = disjoint_library();
    assert_eq!(
        shared.overlap_size_bytes(ModelId(0), ModelId(1)).unwrap(),
        BACKBONE_BYTES
    );
    assert_eq!(
        disjoint.overlap_size_bytes(ModelId(0), ModelId(1)).unwrap(),
        0
    );
    // Equal naive footprints by construction — the comparison above is
    // apples to apples.
    assert_eq!(shared.total_naive_bytes(), disjoint.total_naive_bytes());
}
