//! Property tests on the x↔y mapping of Section IV-B: the block-level view
//! `Y` of any model placement `X` stores exactly the deduplicated bytes of
//! Eq. (7), and the placement induced back from `Y` contains `X`.

use proptest::prelude::*;

use trimcaching::modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching::modellib::{ModelId, ModelLibrary};
use trimcaching::prelude::*;

fn library(seed: u64, special: bool, models_per_backbone: usize) -> ModelLibrary {
    if special {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(models_per_backbone)
            .build(seed)
    } else {
        GeneralCaseBuilder::paper_setup()
            .classes_per_backbone(models_per_backbone)
            .build(seed)
    }
}

/// Builds a placement over `num_servers` servers from a bit mask per
/// server-model pair.
fn placement_from_mask(library: &ModelLibrary, num_servers: usize, mask: u64) -> Placement {
    let mut placement = Placement::empty(num_servers, library.num_models());
    let mut bit = 0u32;
    for m in 0..num_servers {
        for i in 0..library.num_models() {
            if (mask >> (bit % 64)) & 1 == 1 {
                placement.place(ServerId(m), ModelId(i)).unwrap();
            }
            bit += 1;
        }
    }
    placement
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The block view's per-server byte count equals the Eq. (7) union size
    /// of the placed models, and it never exceeds the naive (sharing-
    /// oblivious) sum.
    #[test]
    fn block_view_storage_matches_eq7(
        seed in 0u64..2000,
        special in any::<bool>(),
        models_per_backbone in 2usize..4,
        num_servers in 1usize..4,
        mask in any::<u64>(),
    ) {
        let library = library(seed, special, models_per_backbone);
        let placement = placement_from_mask(&library, num_servers, mask);
        let view = BlockPlacement::from_placement(&placement, &library).unwrap();
        for m in 0..num_servers {
            let models = placement.models_on(ServerId(m)).unwrap();
            let union = library.union_size_bytes(models.iter().copied());
            let stored = view.stored_bytes(ServerId(m), &library).unwrap();
            prop_assert_eq!(stored, union);
            let naive: u64 = models
                .iter()
                .map(|i| library.model_size_bytes(*i).unwrap())
                .sum();
            prop_assert!(stored <= naive);
        }
    }

    /// Inducing a model placement back from the block view recovers at
    /// least the original placement (`X ⊆ induced(Y(X))`), and the induced
    /// placement stores no additional blocks.
    #[test]
    fn induced_placement_contains_the_original(
        seed in 0u64..2000,
        special in any::<bool>(),
        models_per_backbone in 2usize..4,
        num_servers in 1usize..4,
        mask in any::<u64>(),
    ) {
        let library = library(seed, special, models_per_backbone);
        let placement = placement_from_mask(&library, num_servers, mask);
        let view = BlockPlacement::from_placement(&placement, &library).unwrap();
        let induced = view.induced_placement(&library).unwrap();
        for (server, model) in placement.iter() {
            prop_assert!(induced.contains(server, model));
        }
        // The induced placement may contain extra models (subset models come
        // for free) but it never needs more blocks than the view stores.
        let reinduced = BlockPlacement::from_placement(&induced, &library).unwrap();
        for m in 0..num_servers {
            prop_assert_eq!(
                reinduced.stored_bytes(ServerId(m), &library).unwrap(),
                view.stored_bytes(ServerId(m), &library).unwrap()
            );
        }
    }

    /// The incremental storage tracker agrees with the block view for any
    /// insertion order.
    #[test]
    fn storage_tracker_agrees_with_block_view(
        seed in 0u64..2000,
        models_per_backbone in 2usize..4,
        mask in any::<u64>(),
    ) {
        let library = library(seed, true, models_per_backbone);
        let placement = placement_from_mask(&library, 1, mask);
        let mut tracker = StorageTracker::new(&library, u64::MAX);
        for (_, model) in placement.iter() {
            tracker.add(model).unwrap();
        }
        let view = BlockPlacement::from_placement(&placement, &library).unwrap();
        prop_assert_eq!(
            tracker.used_bytes(),
            view.stored_bytes(ServerId(0), &library).unwrap()
        );
    }
}
