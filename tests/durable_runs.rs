//! Durable-run integration tests: journaling, slot-boundary
//! checkpoints, byte-identical resume after a simulated kill, torn-tail
//! crash recovery, offline metric recomputation and A/B checkpoint
//! forks.
//!
//! The central claim under test: a persisted run that is killed at *any*
//! simulated time and resumed from its latest checkpoint produces a
//! final report **and** a journal file byte-for-byte identical to the
//! same run left uninterrupted.

use std::path::{Path, PathBuf};

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::runtime::{
    read_journal, recompute_metrics, ControlConfig, CostAwareLfu, Lru, PersistConfig, RuntimeError,
    ServeConfig, ServeEngine, ServeReport,
};

/// A fresh scratch directory under the system temp dir, unique per
/// test and process so parallel test runs never collide.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tc-durable-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn scenario(num_users: usize, capacity_gb: f64) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(7);
    TopologyConfig::paper_defaults()
        .with_users(num_users)
        .with_capacity_gb(capacity_gb)
        .generate(&library, 7, 0)
        .expect("topology generates")
}

/// A configuration that exercises every checkpointed subsystem at once:
/// mobility (kinematics + handovers), the control loop (estimator and
/// drift state), block-granular fills and in-flight transfers.
fn full_config(seed: u64) -> ServeConfig {
    ServeConfig::smoke()
        .with_duration_s(240.0)
        .with_request_rate_hz(0.1)
        .with_seed(seed)
        .with_mobility_slot_s(5.0)
        .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
}

fn persisted(config: &ServeConfig, dir: &Path, every_s: f64) -> ServeConfig {
    config
        .clone()
        .with_persist(PersistConfig::new(dir.to_path_buf()).with_checkpoint_every_s(every_s))
}

fn run_full(s: &Scenario, config: &ServeConfig) -> ServeReport {
    ServeEngine::new(s, &CostAwareLfu, config.clone())
        .expect("engine builds")
        .run()
        .expect("run completes")
}

#[test]
fn persistence_does_not_change_results() {
    let s = scenario(10, 0.4);
    let config = full_config(41);
    let dir = scratch_dir("transparent");

    let plain = run_full(&s, &config);
    let durable = run_full(&s, &persisted(&config, &dir, 60.0));
    assert_eq!(
        plain, durable,
        "journaling and checkpointing must be invisible to the simulation"
    );
    assert!(dir.join("journal.tcj").exists());
    assert!(dir.join("checkpoint.tcp").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_is_byte_identical_at_any_interrupt_point() {
    let s = scenario(10, 0.4);
    let config = full_config(42);

    // The uninterrupted reference run, journaled for byte comparison.
    let base_dir = scratch_dir("anywhere-base");
    let reference = run_full(&s, &persisted(&config, &base_dir, 60.0));
    let reference_journal = std::fs::read(base_dir.join("journal.tcj")).expect("journal exists");

    // Kill points: before the first request, mid-interval, exactly at a
    // checkpoint boundary, and deep into the run.
    for (i, stop_s) in [0.0, 13.7, 60.0, 151.3, 180.0].into_iter().enumerate() {
        let dir = scratch_dir(&format!("anywhere-{i}"));
        let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
        ServeEngine::new(&s, &CostAwareLfu, config.clone().with_persist(pc()))
            .expect("engine builds")
            .run_until(stop_s)
            .expect("interrupted run");
        let resumed = ServeEngine::resume(&s, &CostAwareLfu, pc())
            .expect("resume succeeds")
            .run()
            .expect("resumed run completes");
        assert_eq!(
            resumed, reference,
            "report after a kill at t={stop_s} must match the uninterrupted run"
        );
        let journal = std::fs::read(dir.join("journal.tcj")).expect("journal exists");
        assert_eq!(
            journal, reference_journal,
            "journal after a kill at t={stop_s} must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base_dir).ok();
}

#[test]
fn repeated_kills_still_converge_to_the_same_run() {
    let s = scenario(8, 0.4);
    let config = full_config(43);
    let reference = run_full(&s, &config);

    let dir = scratch_dir("chain");
    let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(30.0);
    ServeEngine::new(&s, &CostAwareLfu, config.with_persist(pc()))
        .expect("engine builds")
        .run_until(47.0)
        .expect("first leg");
    ServeEngine::resume(&s, &CostAwareLfu, pc())
        .expect("first resume")
        .run_until(128.9)
        .expect("second leg");
    let report = ServeEngine::resume(&s, &CostAwareLfu, pc())
        .expect("second resume")
        .run()
        .expect("final leg");
    assert_eq!(report, reference, "kill/resume chains must converge");
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI smoke test: a 600-slot mobile run is killed mid-flight and
/// resumed; the full metric trace (windows, histogram, counters) must
/// equal the uninterrupted run's exactly.
#[test]
fn resume_smoke_600_slots() {
    let s = scenario(8, 0.4);
    let config = ServeConfig::smoke()
        .with_duration_s(600.0)
        .with_request_rate_hz(0.05)
        .with_seed(600)
        .with_mobility_slot_s(1.0); // 600 mobility slots
    let reference = run_full(&s, &config);

    let dir = scratch_dir("smoke600");
    let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
    ServeEngine::new(&s, &CostAwareLfu, config.with_persist(pc()))
        .expect("engine builds")
        .run_until(317.0)
        .expect("killed at t=317");
    // Resuming under the wrong policy is refused with a clear error...
    let mismatch = ServeEngine::resume(&s, &Lru, pc());
    assert!(matches!(mismatch, Err(RuntimeError::Persist(_))));
    // ...and the matching policy resumes to the identical trace.
    let report = ServeEngine::resume(&s, &CostAwareLfu, pc())
        .expect("resume succeeds")
        .run()
        .expect("resumed run completes");
    assert_eq!(report.metrics.windows(), reference.metrics.windows());
    assert_eq!(report, reference);
    assert!(report.metrics.snapshot_rebuilds >= 599);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_journal_tail_is_recovered_from_the_last_checkpoint() {
    let s = scenario(10, 0.4);
    let config = full_config(44);
    let reference = run_full(&s, &config);

    let dir = scratch_dir("torn");
    let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
    ServeEngine::new(&s, &CostAwareLfu, config.with_persist(pc()))
        .expect("engine builds")
        .run_until(100.0)
        .expect("killed at t=100");

    // Crash injection: chop bytes off the journal tail, leaving the
    // final record torn — as if the process died mid-`write`.
    let journal_path = dir.join("journal.tcj");
    let len = std::fs::metadata(&journal_path)
        .expect("journal exists")
        .len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal_path)
        .expect("journal opens");
    file.set_len(len - 5).expect("truncates");
    drop(file);

    // The strict reader names the torn offset; resume recovers by
    // truncating to the valid prefix and re-serving from the last
    // checkpoint, re-journaling the lost suffix identically.
    let strict = read_journal(&journal_path);
    assert!(
        matches!(
            strict,
            Err(trimcaching::runtime::PersistError::TornRecord { offset }) if offset < len - 5
        ),
        "strict read must report the torn record, got {strict:?}"
    );
    let report = ServeEngine::resume(&s, &CostAwareLfu, pc())
        .expect("resume recovers the torn journal")
        .run()
        .expect("resumed run completes");
    assert_eq!(report, reference, "torn-tail recovery must lose nothing");
    let (_, records) = read_journal(&journal_path).expect("journal is whole again");
    assert_eq!(records.len() as u64, reference.metrics.requests);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_is_a_clear_error() {
    let s = scenario(8, 0.4);
    let dir = scratch_dir("corrupt-cp");
    let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(30.0);
    ServeEngine::new(&s, &CostAwareLfu, full_config(45).with_persist(pc()))
        .expect("engine builds")
        .run_until(90.0)
        .expect("killed at t=90");

    let cp_path = dir.join("checkpoint.tcp");
    let mut bytes = std::fs::read(&cp_path).expect("checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&cp_path, &bytes).expect("rewrites");

    let err = ServeEngine::resume(&s, &CostAwareLfu, pc())
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::Persist(_)),
        "a flipped checkpoint byte must surface as a persistence error, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_recomputes_the_request_level_metrics_bit_for_bit() {
    let s = scenario(10, 0.4);
    let dir = scratch_dir("recompute");
    let config = persisted(&full_config(46), &dir, 60.0);
    let report = run_full(&s, &config);

    let (header, records) = read_journal(&dir.join("journal.tcj")).expect("journal reads");
    assert_eq!(records.len() as u64, report.metrics.requests);
    let offline = recompute_metrics(&header, &records);
    let live = &report.metrics;
    assert_eq!(offline.requests, live.requests);
    assert_eq!(offline.hits, live.hits);
    assert_eq!(offline.misses_served, live.misses_served);
    assert_eq!(offline.rejected, live.rejected);
    assert_eq!(offline.block_hits, live.block_hits);
    assert_eq!(offline.block_requests, live.block_requests);
    assert_eq!(offline.windows(), live.windows());
    // The histogram was fed identical bit patterns in identical order.
    assert_eq!(offline.p50_latency_s(), live.p50_latency_s());
    assert_eq!(offline.p95_latency_s(), live.p95_latency_s());
    assert_eq!(offline.p99_latency_s(), live.p99_latency_s());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forks_share_their_past_and_diverge_deterministically() {
    let s = scenario(12, 0.25);
    let config = full_config(47);
    let dir = scratch_dir("fork");
    let pc = PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
    // Persist the A-side to completion; its checkpoint file holds the
    // last boundary (t = duration), so interrupt partway instead to
    // leave a mid-run fork point on disk.
    ServeEngine::new(&s, &CostAwareLfu, config.clone().with_persist(pc))
        .expect("engine builds")
        .run_until(130.0)
        .expect("killed at t=130");
    let cp_path = dir.join("checkpoint.tcp");

    // Fork the same checkpoint under the original and a different
    // policy: identical past, policy-only divergence ahead.
    let a1 = ServeEngine::fork(&s, &CostAwareLfu, &cp_path)
        .expect("fork A")
        .run()
        .expect("fork A runs");
    let a2 = ServeEngine::fork(&s, &CostAwareLfu, &cp_path)
        .expect("fork A again")
        .run()
        .expect("fork A runs again");
    let b1 = ServeEngine::fork(&s, &Lru, &cp_path)
        .expect("fork B")
        .run()
        .expect("fork B runs");
    let b2 = ServeEngine::fork(&s, &Lru, &cp_path)
        .expect("fork B again")
        .run()
        .expect("fork B runs again");
    assert_eq!(a1, a2, "each fork must be deterministic");
    assert_eq!(b1, b2, "each fork must be deterministic");
    assert_eq!(a1.policy, "cost-aware");
    assert_eq!(b1.policy, "lru");
    assert_ne!(
        a1.metrics, b1.metrics,
        "different policies over the same checkpoint must diverge"
    );

    // A same-policy fork is exactly the uninterrupted continuation.
    let reference = run_full(&s, &config);
    assert_eq!(a1, reference);
    std::fs::remove_dir_all(&dir).ok();
}
