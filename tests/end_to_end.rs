//! Cross-crate integration tests: library → scenario → placement →
//! evaluation, for both of the paper's library constructions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching::modellib::ModelLibrary;
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

/// Builds a moderately sized scenario over the given library with servers
/// on a grid (so coverage is guaranteed) and users spread uniformly.
fn scenario_for(library: ModelLibrary, num_users: usize, capacity_gb: f64, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = [
        (250.0, 250.0),
        (750.0, 250.0),
        (250.0, 750.0),
        (750.0, 750.0),
        (500.0, 500.0),
    ]
    .iter()
    .enumerate()
    .map(|(m, (x, y))| {
        EdgeServer::new(ServerId(m), Point::new(*x, *y), gigabytes(capacity_gb)).unwrap()
    })
    .collect();
    let users: Vec<Point> = (0..num_users)
        .map(|_| area.sample_uniform(&mut rng))
        .collect();
    let demand = DemandConfig::paper_defaults()
        .generate(num_users, library.num_models(), &mut rng)
        .unwrap();
    Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .build()
        .unwrap()
}

#[test]
fn full_pipeline_special_case() {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(5)
        .build(42);
    let scenario = scenario_for(library, 20, 1.0, 42);

    let spec = TrimCachingSpec::new().place(&scenario).unwrap();
    let gen = TrimCachingGen::new().place(&scenario).unwrap();
    let independent = IndependentCaching::new().place(&scenario).unwrap();

    // All placements respect the shared-storage capacities.
    for outcome in [&spec, &gen, &independent] {
        assert!(scenario.satisfies_capacities(&outcome.placement));
        assert!((0.0..=1.0).contains(&outcome.hit_ratio));
    }
    // The paper's qualitative ordering.
    assert!(spec.hit_ratio >= independent.hit_ratio - 1e-9);
    assert!(gen.hit_ratio >= independent.hit_ratio - 1e-9);
    assert!(spec.hit_ratio >= gen.hit_ratio - 0.03);
    // Something useful is cached.
    assert!(spec.hit_ratio > 0.0);

    // Fading evaluation stays within [0, 1] and near the nominal value.
    let mut rng = StdRng::seed_from_u64(1);
    let faded = scenario
        .average_hit_ratio_under_fading(&spec.placement, 100, &mut rng)
        .unwrap();
    assert!((0.0..=1.0).contains(&faded));
    assert!((faded - spec.hit_ratio).abs() < 0.4);
}

#[test]
fn full_pipeline_general_case() {
    let library = GeneralCaseBuilder::paper_setup()
        .classes_per_backbone(5)
        .build(42);
    let scenario = scenario_for(library, 20, 1.0, 43);
    let gen = TrimCachingGen::new().place(&scenario).unwrap();
    let independent = IndependentCaching::new().place(&scenario).unwrap();
    assert!(scenario.satisfies_capacities(&gen.placement));
    assert!(gen.hit_ratio >= independent.hit_ratio - 1e-9);
    assert!(gen.hit_ratio > 0.0);
}

#[test]
fn sharing_gain_grows_when_capacity_is_scarce() {
    // The benefit of TrimCaching over Independent Caching should be larger
    // at 0.5 GB than at 1.5 GB, where both can cache nearly everything.
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(5)
        .build(9);
    let tight = scenario_for(library.clone(), 20, 0.4, 9);
    let roomy = scenario_for(library, 20, 2.5, 9);
    let gain = |s: &Scenario| {
        let gen = TrimCachingGen::new().place(s).unwrap().hit_ratio;
        let ind = IndependentCaching::new().place(s).unwrap().hit_ratio;
        gen - ind
    };
    let tight_gain = gain(&tight);
    let roomy_gain = gain(&roomy);
    assert!(
        tight_gain >= roomy_gain - 1e-9,
        "sharing gain should not shrink when storage gets scarce ({tight_gain} vs {roomy_gain})"
    );
}

#[test]
fn stale_placement_survives_user_movement() {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(5)
        .build(4);
    let scenario = scenario_for(library, 12, 1.0, 4);
    let placement = TrimCachingSpec::new().place(&scenario).unwrap().placement;
    let initial = scenario.hit_ratio(&placement);
    assert!(initial > 0.0);

    let area = DeploymentArea::paper_default();
    let positions: Vec<Point> = scenario.users().iter().map(|u| u.position()).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let mut mobility =
        trimcaching::scenario::mobility::MobilityModel::paper_mix(&positions, area, &mut rng);
    // One hour of movement.
    let moved_positions = mobility.run_slots(720, &mut rng);
    let moved = scenario.with_user_positions(&moved_positions).unwrap();
    let stale = moved.hit_ratio(&placement);
    assert!((0.0..=1.0).contains(&stale));
    // Re-optimising on the fresh snapshot can only help.
    let reoptimised = TrimCachingSpec::new().place(&moved).unwrap().hit_ratio;
    assert!(reoptimised >= stale - 0.03);
}

#[test]
fn exhaustive_reference_bounds_the_heuristics_end_to_end() {
    // Small instance where exhaustive search is cheap.
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(2)
        .build(8);
    let mut rng = StdRng::seed_from_u64(8);
    let area = DeploymentArea::paper_small();
    let servers: Vec<EdgeServer> = vec![
        EdgeServer::new(ServerId(0), Point::new(100.0, 200.0), gigabytes(0.15)).unwrap(),
        EdgeServer::new(ServerId(1), Point::new(300.0, 200.0), gigabytes(0.15)).unwrap(),
    ];
    let users: Vec<Point> = (0..6).map(|_| area.sample_uniform(&mut rng)).collect();
    let demand = DemandConfig::paper_defaults()
        .generate(6, library.num_models(), &mut rng)
        .unwrap();
    let scenario = Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .build()
        .unwrap();

    let optimal = ExhaustiveSearch::new().place(&scenario).unwrap();
    let spec = TrimCachingSpec::new()
        .with_epsilon(0.0)
        .place(&scenario)
        .unwrap();
    let gen = TrimCachingGen::new().place(&scenario).unwrap();
    assert!(optimal.hit_ratio >= spec.hit_ratio - 1e-9);
    assert!(optimal.hit_ratio >= gen.hit_ratio - 1e-9);
    // Theorem 2 with epsilon = 0: at least half of the optimum.
    assert!(spec.hit_ratio >= 0.5 * optimal.hit_ratio - 1e-9);
}
