//! Smoke tests for every experiment driver: each figure of the paper can be
//! regenerated end-to-end at reduced scale and produces a structurally
//! correct table whose values respect the paper's qualitative claims.

use trimcaching::sim::experiments::{ablation, adapt, fig1, fig4, fig5, fig6, fig7, RunConfig};
use trimcaching::sim::MonteCarloConfig;

fn smoke_config() -> RunConfig {
    RunConfig {
        monte_carlo: MonteCarloConfig {
            topologies: 2,
            fading_realisations: 5,
            seed: 99,
            threads: 0,
        },
        models_per_backbone: 3,
        library_seed: 99,
    }
}

#[test]
fn fig1_curve_is_generated() {
    let table = fig1::accuracy_vs_frozen_layers();
    assert_eq!(table.id, "fig1");
    assert!(table.rows.len() > 10);
    assert!(!table.to_markdown().is_empty());
    assert!(!table.to_csv().is_empty());
}

#[test]
fn fig4_all_three_panels_run() {
    let config = smoke_config();
    for (table, expected_id) in [
        (fig4::capacity_sweep(&config).unwrap(), "fig4a"),
        (fig4::server_sweep(&config).unwrap(), "fig4b"),
        (fig4::user_sweep(&config).unwrap(), "fig4c"),
    ] {
        assert_eq!(table.id, expected_id);
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.series.len(), 3);
        let spec = table.series_means("trimcaching-spec").unwrap();
        let ind = table.series_means("independent-caching").unwrap();
        for (s, i) in spec.iter().zip(&ind) {
            assert!((0.0..=1.0).contains(s));
            assert!(
                s >= &(i - 1e-9),
                "{expected_id}: spec {s} < independent {i}"
            );
        }
    }
}

#[test]
fn fig5_both_series_run() {
    let config = smoke_config();
    let table = fig5::capacity_sweep(&config).unwrap();
    assert_eq!(table.id, "fig5a");
    assert_eq!(table.series.len(), 2);
    let gen = table.series_means("trimcaching-gen").unwrap();
    let ind = table.series_means("independent-caching").unwrap();
    for (g, i) in gen.iter().zip(&ind) {
        assert!(g >= &(i - 1e-9));
    }
}

#[test]
fn fig6_comparisons_run() {
    let config = smoke_config();
    let a = fig6::special_case_vs_optimal(&config).unwrap();
    assert_eq!(a.rows.len(), 3);
    let optimal = a
        .rows
        .iter()
        .find(|r| r.algorithm == "exhaustive-search")
        .unwrap();
    for row in &a.rows {
        assert!(row.hit_ratio.mean <= optimal.hit_ratio.mean + 1e-9);
    }
    let b = fig6::general_case_runtime(&config).unwrap();
    assert_eq!(b.rows.len(), 2);
}

#[test]
fn fig7_mobility_runs() {
    let config = smoke_config();
    let table = fig7::mobility_robustness(&config).unwrap();
    assert_eq!(table.id, "fig7");
    assert_eq!(table.rows.first().unwrap().x, 0.0);
    assert_eq!(table.rows.last().unwrap().x, 120.0);
}

#[test]
fn serve_adapt_runs() {
    let config = smoke_config();
    let summary = adapt::adaptive_serving(&config).unwrap();
    assert_eq!(summary.id, "serve-adapt");
    assert_eq!(summary.rows.len(), 3, "static, oracle, controller");
    assert_eq!(summary.series.len(), 6);
    for row in &summary.rows {
        assert!((0.0..=1.0).contains(&row.cells[0].mean), "hit ratio");
        assert!(
            row.cells[4].mean <= row.cells[3].mean + 1e-9,
            "reconfiguration MB cannot exceed total backhaul MB"
        );
    }
    // The static baseline never re-plans and moves no reconfig bytes.
    assert_eq!(summary.rows[0].cells[5].mean, 0.0);
    assert_eq!(summary.rows[0].cells[4].mean, 0.0);
    let trace = adapt::adaptive_trace(&config).unwrap();
    assert_eq!(trace.id, "serve-adapt-trace");
    assert_eq!(trace.series.len(), 3);
    assert!(!trace.rows.is_empty());
    assert!(!trace.to_markdown().is_empty());
}

#[test]
fn ablations_run() {
    let config = smoke_config();
    assert_eq!(ablation::epsilon_sweep(&config).unwrap().rows.len(), 5);
    assert_eq!(
        ablation::sharing_depth_sweep(&config).unwrap().rows.len(),
        5
    );
    assert_eq!(ablation::zipf_sweep(&config).unwrap().rows.len(), 5);
    assert_eq!(ablation::library_scaling(&config).unwrap().rows.len(), 4);
}
