//! Fault-injection integration tests: deterministic outage storms,
//! serve-path failover, retrying fills, self-healing re-replication and
//! durable runs killed *during* an outage.
//!
//! The central claims under test:
//!
//! * a faulted run is a pure function of its seed — same seed, same
//!   schedule, byte-identical report (pinned property-based);
//! * failover strictly dominates the static baseline on availability
//!   **and** hit ratio when ≥ 10% of the fleet is down;
//! * a persisted run killed mid-outage — servers down, retries pending,
//!   a re-replication target armed — resumes to a report and journal
//!   byte-for-byte identical to the uninterrupted run.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::runtime::{
    serve, ControlConfig, CostAwareLfu, FaultConfig, FaultKind, FaultSpec, Lru, PersistConfig,
    RecoveryMode, ServeConfig, ServeEngine, ServeReport,
};

/// A fresh scratch directory under the system temp dir, unique per
/// test and process so parallel test runs never collide.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tc-faults-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn scenario(num_users: usize, capacity_gb: f64) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(7);
    TopologyConfig::paper_defaults()
        .with_users(num_users)
        .with_capacity_gb(capacity_gb)
        .generate(&library, 7, 0)
        .expect("topology generates")
}

/// A configuration exercising every stateful subsystem alongside the
/// fault machinery: mobility, the control loop, fills and transfers.
fn full_config(seed: u64) -> ServeConfig {
    ServeConfig::smoke()
        .with_duration_s(240.0)
        .with_request_rate_hz(0.1)
        .with_seed(seed)
        .with_mobility_slot_s(5.0)
        .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
}

fn persisted(config: &ServeConfig, dir: &Path, every_s: f64) -> ServeConfig {
    config
        .clone()
        .with_persist(PersistConfig::new(dir.to_path_buf()).with_checkpoint_every_s(every_s))
}

fn run_full(s: &Scenario, config: &ServeConfig) -> ServeReport {
    ServeEngine::new(s, &CostAwareLfu, config.clone())
        .expect("engine builds")
        .run()
        .expect("run completes")
}

/// An explicit compound fault with cold recovery: the busiest server's
/// backhaul link crawls from t=10 (so fills are in flight when the
/// server fails), the server is down from t=50 to t=170, and the link
/// heals last — the timeline every durable test below shares. It
/// drives every branch of the fault machinery at once: aborted fills,
/// retry backoff, failover, recovery loss and link restoration.
fn explicit_outage() -> FaultConfig {
    FaultConfig::new(vec![
        FaultSpec {
            at_s: 10.0,
            kind: FaultKind::LinkDegraded {
                server: 4,
                factor: 0.002,
            },
        },
        FaultSpec {
            at_s: 50.0,
            kind: FaultKind::ServerDown { server: 4 },
        },
        FaultSpec {
            at_s: 170.0,
            kind: FaultKind::ServerUp { server: 4 },
        },
        FaultSpec {
            at_s: 180.0,
            kind: FaultKind::LinkRestored { server: 4 },
        },
    ])
    .with_recovery(RecoveryMode::Cold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed, same storm, byte-identical reports — across random
    /// storm shapes, recovery modes and failover settings.
    #[test]
    fn same_seed_faulted_runs_are_byte_identical(
        storm_seed in 0u64..1_000,
        down_fraction in 0.1f64..0.5,
        start_s in 30.0f64..90.0,
        outage_s in 60.0f64..120.0,
        recovery_tag in 0usize..3,
        failover in any::<bool>(),
    ) {
        let s = scenario(8, 0.4);
        let recovery = match recovery_tag {
            0 => RecoveryMode::Intact,
            1 => RecoveryMode::Cold,
            _ => RecoveryMode::Partial { keep_fraction: 0.5 },
        };
        let storm = FaultConfig::outage_storm(
            s.num_servers(), down_fraction, start_s, outage_s, storm_seed,
        )
        .expect("storm generates")
        .with_recovery(recovery)
        .with_failover(failover);
        let config = full_config(48).with_faults(storm);
        let a = run_full(&s, &config);
        let b = run_full(&s, &config);
        prop_assert_eq!(&a, &b, "same-seed faulted runs must be identical");
        prop_assert!(a.metrics.faults_injected > 0, "the storm must fire");
    }
}

/// The acceptance bar: under a scheduled outage covering ≥ 10% of the
/// fleet, failover-enabled serving sustains strictly higher availability
/// *and* hit ratio than the failover-disabled baseline.
#[test]
fn failover_strictly_beats_the_static_baseline_under_a_fleet_outage() {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(2)
        .build(7);
    let s = TopologyConfig::paper_defaults()
        .with_users(20)
        .with_capacity_gb(0.25)
        .generate(&library, 7, 0)
        .expect("topology generates");
    let storm = |failover| {
        FaultConfig::outage_storm(s.num_servers(), 0.25, 120.0, 180.0, 7)
            .expect("storm generates")
            .with_recovery(RecoveryMode::Partial { keep_fraction: 0.5 })
            .with_failover(failover)
    };
    let config = |failover| {
        ServeConfig::paper_defaults()
            .with_duration_s(600.0)
            .with_request_rate_hz(0.2)
            .with_seed(7)
            .with_mobility_slot_s(5.0)
            .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
            .with_faults(storm(failover))
    };
    let stat = serve(&s, &Lru, None, &config(false)).expect("static run");
    let over = serve(&s, &Lru, None, &config(true)).expect("failover run");
    assert!(
        stat.metrics.requests_failed > 0,
        "the storm must fail requests without failover"
    );
    assert!(
        over.metrics.availability() > stat.metrics.availability(),
        "failover must strictly raise availability: {} vs {}",
        over.metrics.availability(),
        stat.metrics.availability()
    );
    assert!(
        over.metrics.hit_ratio() > stat.metrics.hit_ratio(),
        "failover must strictly raise hit ratio: {} vs {}",
        over.metrics.hit_ratio(),
        stat.metrics.hit_ratio()
    );
    assert!(over.metrics.requests_failed_over > 0);
    assert!(over.metrics.models_lost > 0, "partial recovery lost models");
}

/// Kill the persisted run while server 0 is down — fill retries queued,
/// the link degraded, a re-replication pass still ahead — and resume:
/// report and journal must match the uninterrupted run byte for byte.
#[test]
fn resume_mid_outage_is_byte_identical() {
    let s = scenario(10, 0.4);
    let config = full_config(49).with_faults(explicit_outage());

    let base_dir = scratch_dir("mid-outage-base");
    let reference = run_full(&s, &persisted(&config, &base_dir, 60.0));
    assert_eq!(reference.metrics.faults_injected, 2);
    assert_eq!(reference.metrics.faults_recovered, 2);
    assert!(reference.metrics.models_lost > 0, "cold recovery bites");
    assert!(
        reference.metrics.fills_aborted > 0,
        "the outage caught fills"
    );
    assert!(reference.metrics.fill_retries > 0, "retries were scheduled");
    let reference_journal = std::fs::read(base_dir.join("journal.tcj")).expect("journal exists");

    // Kill points inside the outage window (checkpoints at 60 and 120
    // both persist down-server state) and after full recovery.
    for (i, stop_s) in [70.0, 100.0, 145.0, 200.0].into_iter().enumerate() {
        let dir = scratch_dir(&format!("mid-outage-{i}"));
        let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
        ServeEngine::new(&s, &CostAwareLfu, config.clone().with_persist(pc()))
            .expect("engine builds")
            .run_until(stop_s)
            .expect("interrupted run");
        let resumed = ServeEngine::resume(&s, &CostAwareLfu, pc())
            .expect("resume succeeds")
            .run()
            .expect("resumed run completes");
        assert_eq!(
            resumed, reference,
            "report after a kill at t={stop_s} must match the uninterrupted run"
        );
        let journal = std::fs::read(dir.join("journal.tcj")).expect("journal exists");
        assert_eq!(
            journal, reference_journal,
            "journal after a kill at t={stop_s} must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base_dir).ok();
}

/// Faults must be invisible when the schedule is empty, and persistence
/// must stay invisible when faults are on.
#[test]
fn empty_schedules_and_persistence_change_nothing() {
    let s = scenario(8, 0.4);
    let plain = run_full(&s, &full_config(50));
    let empty = run_full(
        &s,
        &full_config(50).with_faults(FaultConfig::new(Vec::new())),
    );
    assert_eq!(plain, empty, "an empty fault schedule must be a no-op");

    let dir = scratch_dir("transparent");
    let faulted = full_config(50).with_faults(explicit_outage());
    let live = run_full(&s, &faulted);
    let durable = run_full(&s, &persisted(&faulted, &dir, 60.0));
    assert_eq!(
        live, durable,
        "journaling a faulted run must not change its outcome"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI chaos smoke: a storm over a quarter of the fleet with cold
/// recovery, killed mid-outage and resumed — deterministic, available
/// and byte-identical end to end.
#[test]
fn chaos_smoke_storm_resume() {
    let s = scenario(8, 0.4);
    let storm = FaultConfig::outage_storm(s.num_servers(), 0.25, 60.0, 120.0, 9)
        .expect("storm generates")
        .with_recovery(RecoveryMode::Cold);
    let config = full_config(51).with_faults(storm);
    let reference = run_full(&s, &config);
    assert!(reference.metrics.faults_injected > 0, "the storm fired");
    assert!(
        reference.metrics.availability() > 0.5,
        "failover keeps the run mostly available"
    );

    let dir = scratch_dir("chaos-smoke");
    let pc = || PersistConfig::new(dir.clone()).with_checkpoint_every_s(60.0);
    ServeEngine::new(&s, &CostAwareLfu, config.with_persist(pc()))
        .expect("engine builds")
        .run_until(110.0)
        .expect("killed mid-outage");
    let resumed = ServeEngine::resume(&s, &CostAwareLfu, pc())
        .expect("resume succeeds")
        .run()
        .expect("resumed run completes");
    assert_eq!(resumed, reference, "chaos resume must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}
