//! Integration tests of the online re-placement controller
//! (`runtime::control`): determinism of controller-enabled runs, and
//! the adaptation acceptance bar — under a seeded mid-run popularity
//! shift at city scale, the controller's post-shift steady-state hit
//! ratio beats the static baseline and stays within five points of an
//! oracle replan, with every reconfiguration byte accounted on the
//! backhaul links.

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::runtime::Workload;
// The controller tuning and steady-state accounting are shared with the
// recorded `serve-adapt` experiment — the acceptance asserts run against
// exactly the configuration EXPERIMENTS.md reports.
use trimcaching::sim::experiments::adapt::{self, hit_ratio_after, study_control_config};
use trimcaching::sim::experiments::RunConfig;

/// A compact city: Poisson-deployed servers on the coverage-pruned
/// sparse eligibility representation (the PR 2 machinery), a shared
/// global popularity ranking so a flip moves the whole population's
/// demand coherently, and capacity tight enough that placement matters.
fn city_scenario() -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(10)
        .build(2024);
    let mut city = CityScaleConfig::district().with_users(500);
    city.area_side_m = 2_000.0;
    city.servers_per_km2 = 8.0;
    city.capacity_gb = 0.25;
    city.demand.personalised_popularity = false;
    let scenario = city.generate(&library, 2024, 0).expect("city generates");
    assert!(scenario.eligibility().is_sparse(), "city scale runs sparse");
    scenario
}

/// The flip study timings: shift at 500 s, steady state over the last
/// 500 s (detection + staged reconciliation get the middle 500 s).
const DURATION_S: f64 = 1500.0;
const SHIFT_S: f64 = 500.0;
const STEADY_FROM_S: f64 = 1000.0;
const RATE_HZ: f64 = 0.2;

fn flip_workload(scenario: &Scenario) -> (Workload, Demand) {
    let base = scenario.demand();
    let flipped = rotate_popularity(base, scenario.num_models() / 2).expect("rotation is valid");
    let workload =
        Workload::piecewise(&[(0.0, base), (SHIFT_S, &flipped)], RATE_HZ).expect("piecewise");
    (workload, flipped)
}

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig::paper_defaults()
        .with_duration_s(DURATION_S)
        .with_request_rate_hz(RATE_HZ)
        .with_seed(seed)
}

#[test]
fn controller_runs_are_byte_identical_per_seed() {
    let scenario = city_scenario();
    let (workload, _) = flip_workload(&scenario);
    let config = serve_config(7).with_control(study_control_config());
    let run = |config: &ServeConfig| {
        serve_with_workload(&scenario, &CostAwareLfu, None, config, &workload)
            .expect("controller run")
    };
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a, b, "same-seed controller runs must be byte-identical");
    assert_eq!(a.metrics.windows(), b.metrics.windows());
    assert!(a.metrics.control_ticks > 0);
    let c = run(&config.with_seed(8));
    assert_ne!(
        a.metrics.windows(),
        c.metrics.windows(),
        "different seeds must differ"
    );
}

#[test]
fn drift_replan_beats_static_and_tracks_the_oracle_at_city_scale() {
    let scenario = city_scenario();
    let (workload, flipped) = flip_workload(&scenario);
    let initial = TrimCachingGenLazy::new()
        .place(&scenario)
        .expect("warm-start plan")
        .placement;
    let oracle_target = TrimCachingGenLazy::new()
        .place_with_demand(&scenario, &flipped)
        .expect("oracle plan")
        .placement;
    let base_config = serve_config(2024);

    let run = |config: ServeConfig, oracle: Option<&Placement>| -> ServeReport {
        let mut engine = ServeEngine::new(&scenario, &CostAwareLfu, config).expect("engine builds");
        engine
            .set_workload(workload.clone())
            .expect("workload fits");
        engine.warm_start(&initial).expect("warm start");
        if let Some(target) = oracle {
            engine
                .schedule_reconcile(SHIFT_S, target.clone())
                .expect("oracle schedule");
        }
        engine.run().expect("run completes")
    };

    let static_run = run(base_config.clone(), None);
    let oracle_run = run(base_config.clone(), Some(&oracle_target));
    let controller_run = run(base_config.with_control(study_control_config()), None);

    // The static placement must actually be hurt by the flip — otherwise
    // this test asserts nothing about adaptation.
    let static_pre = hit_ratio_after(&static_run, 0.0);
    let static_post = hit_ratio_after(&static_run, STEADY_FROM_S);
    let oracle_post = hit_ratio_after(&oracle_run, STEADY_FROM_S);
    let controller_post = hit_ratio_after(&controller_run, STEADY_FROM_S);
    assert!(
        static_post < static_pre,
        "the popularity flip must degrade the static baseline \
         (pre {static_pre:.4}, post {static_post:.4})"
    );

    // Acceptance: strictly above static, within five points of the
    // oracle's post-shift steady state.
    assert!(
        controller_post > static_post,
        "controller post-shift hit ratio {controller_post:.4} must beat static {static_post:.4}"
    );
    assert!(
        controller_post >= oracle_post - 0.05,
        "controller {controller_post:.4} must be within 5 points of the oracle {oracle_post:.4}"
    );

    // The controller really went through the drift path, and every
    // reconfiguration byte is accounted on the backhaul links.
    let m = &controller_run.metrics;
    assert!(m.replans_triggered >= 1);
    assert!(m.replans_drift >= 1, "the flip must fire the drift trigger");
    assert!(m.reconcile_fills_started > 0);
    assert!(m.reconcile_bytes_moved > 0);
    assert!(
        m.reconcile_bytes_moved <= m.backhaul_bytes_moved,
        "reconfiguration traffic is a subset of backhaul traffic"
    );
    assert!(m.reconcile_fills_started <= m.insertions);
    assert!(m.reconcile_evictions <= m.evictions);
    // The static baseline never touched the control path.
    assert_eq!(static_run.metrics.replans_triggered, 0);
    assert_eq!(static_run.metrics.reconcile_bytes_moved, 0);
    // The oracle staged exactly its one scheduled reconciliation.
    assert_eq!(oracle_run.metrics.replans_triggered, 1);
    assert!(oracle_run.metrics.reconcile_bytes_moved > 0);
}

#[test]
fn serve_adapt_experiment_reports_the_adaptation_ordering() {
    // The `serve-adapt` driver at reduced scale (the EXPERIMENTS.md
    // setting): controller strictly above static on the post-shift
    // steady state and within five points of the oracle.
    let table = adapt::adaptive_serving(&RunConfig::reduced()).expect("experiment runs");
    assert_eq!(table.rows.len(), 3);
    let post = |row: usize| table.rows[row].cells[1].mean;
    let (static_post, oracle_post, controller_post) = (post(0), post(1), post(2));
    assert!(
        controller_post > static_post,
        "controller {controller_post:.4} vs static {static_post:.4}"
    );
    assert!(
        controller_post >= oracle_post - 0.05,
        "controller {controller_post:.4} vs oracle {oracle_post:.4}"
    );
    // Reconfiguration traffic is reported and part of the backhaul
    // total for both adaptive variants.
    for row in 1..3 {
        let backhaul = table.rows[row].cells[3].mean;
        let reconfig = table.rows[row].cells[4].mean;
        assert!(reconfig > 0.0);
        assert!(reconfig <= backhaul);
        assert!(table.rows[row].cells[5].mean >= 1.0, "re-plans fired");
    }
}
