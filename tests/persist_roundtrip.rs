//! Property-based round-trip coverage of the persistence wire format:
//! primitive codec round-trips (including hostile `f64` bit patterns),
//! CRC-32 single-bit-error detection, and — against *real* engine
//! states — byte-identical checkpoint re-encoding: decoding a
//! checkpoint file and re-encoding it must reproduce the exact bytes,
//! for any run configuration and any interrupt point.

use proptest::prelude::*;

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::prelude::*;
use trimcaching::runtime::persist::wire::{crc32, Decoder, Encoder};
use trimcaching::runtime::persist::Checkpoint;
use trimcaching::runtime::{
    read_journal, ControlConfig, CostAwareLfu, FillGranularity, PersistConfig, ServeConfig,
    ServeEngine,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every primitive the codec offers round-trips losslessly through
    /// an encode/decode cycle, in sequence, with nothing left over.
    #[test]
    fn wire_primitives_round_trip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        d in any::<i64>(),
        // Arbitrary bit patterns: NaN payloads, negative zero,
        // subnormals and infinities must all survive bit-exactly.
        bits in any::<u64>(),
        flag in any::<bool>(),
        text_bytes in collection::vec(32u8..127, 0..40),
        floats in collection::vec(any::<u64>(), 0..20),
        words in collection::vec(any::<u64>(), 0..20),
        flags in collection::vec(any::<bool>(), 0..20),
    ) {
        // ASCII payload plus a multi-byte suffix so UTF-8 length
        // prefixes are exercised beyond one byte per char.
        let text: String =
            text_bytes.iter().map(|&b| b as char).collect::<String>() + "—é";
        let fs: Vec<f64> = floats.iter().map(|&b| f64::from_bits(b)).collect();
        let mut e = Encoder::new();
        e.put_u8(a);
        e.put_u32(b);
        e.put_u64(c);
        e.put_i64(d);
        e.put_f64(f64::from_bits(bits));
        e.put_bool(flag);
        e.put_str(&text);
        e.put_f64_slice(&fs);
        e.put_u64_slice(&words);
        e.put_bool_slice(&flags);
        let bytes = e.into_bytes();

        let mut dec = Decoder::new(&bytes, "proptest");
        prop_assert_eq!(dec.get_u8().unwrap(), a);
        prop_assert_eq!(dec.get_u32().unwrap(), b);
        prop_assert_eq!(dec.get_u64().unwrap(), c);
        prop_assert_eq!(dec.get_i64().unwrap(), d);
        prop_assert_eq!(dec.get_f64().unwrap().to_bits(), bits);
        prop_assert_eq!(dec.get_bool().unwrap(), flag);
        prop_assert_eq!(dec.get_str().unwrap(), text);
        let back: Vec<u64> = dec.get_f64_vec().unwrap().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back, floats);
        prop_assert_eq!(dec.get_u64_vec().unwrap(), words);
        prop_assert_eq!(dec.get_bool_vec().unwrap(), flags);
        dec.finish().unwrap();
    }

    /// CRC-32 detects every single-bit error — the exact failure mode
    /// of a torn journal write.
    #[test]
    fn crc32_detects_single_bit_flips(
        bytes in collection::vec(any::<u8>(), 1..200),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let clean = crc32(&bytes);
        let mut flipped = bytes;
        let i = pos % flipped.len();
        flipped[i] ^= 1 << bit;
        prop_assert!(crc32(&flipped) != clean, "flip at byte {i} bit {bit} went undetected");
    }

    /// Truncating an encoded buffer never panics — it decodes to a
    /// clean corruption error (or a valid shorter prefix read).
    #[test]
    fn truncated_buffers_fail_cleanly(
        words in collection::vec(any::<u64>(), 1..10),
        cut in any::<usize>(),
    ) {
        let mut e = Encoder::new();
        e.put_u64_slice(&words);
        let bytes = e.into_bytes();
        let cut = cut % bytes.len();
        let mut dec = Decoder::new(&bytes[..cut], "proptest");
        // Must not panic; any outcome other than a crash is fine.
        let _ = dec.get_u64_vec();
    }
}

fn scenario(seed: u64, num_users: usize) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(seed);
    TopologyConfig::paper_defaults()
        .with_users(num_users)
        .with_capacity_gb(0.4)
        .generate(&library, seed, 0)
        .expect("topology generates")
}

proptest! {
    // Engine runs are comparatively expensive; a small random sample
    // over the configuration space is what matters here.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoints of real engine states — any seed, duration, fill
    /// granularity, mobility/control combination and interrupt point —
    /// decode and re-encode to the identical byte image, and their
    /// journals stay strictly readable.
    #[test]
    fn real_checkpoints_reencode_byte_identically(
        seed in 0u64..1_000,
        users in 6usize..14,
        duration_s in 40.0f64..120.0,
        stop_frac in 0.1f64..1.0,
        every_s in 10.0f64..40.0,
        mobility in any::<bool>(),
        control in any::<bool>(),
        block in any::<bool>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tc-roundtrip-{}-{seed}-{users}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let s = scenario(seed, users);
        let mut config = ServeConfig::smoke()
            .with_seed(seed)
            .with_duration_s(duration_s)
            .with_request_rate_hz(0.15)
            .with_granularity(if block {
                FillGranularity::Block
            } else {
                FillGranularity::WholeModel
            })
            .with_persist(PersistConfig::new(dir.clone()).with_checkpoint_every_s(every_s));
        if mobility {
            config = config.with_mobility_slot_s(5.0);
        }
        if control {
            config = config.with_control(ControlConfig::paper_defaults().with_tick_s(15.0));
        }

        ServeEngine::new(&s, &CostAwareLfu, config)
            .expect("engine builds")
            .run_until(duration_s * stop_frac)
            .expect("interrupted run");

        let cp_path = dir.join("checkpoint.tcp");
        let bytes = std::fs::read(&cp_path).expect("checkpoint exists");
        let cp = Checkpoint::from_bytes(&bytes).expect("checkpoint decodes");
        prop_assert_eq!(
            cp.to_bytes(),
            bytes.clone(),
            "decode→re-encode must reproduce the file image"
        );
        // Saving the decoded checkpoint elsewhere writes the same image.
        let copy = dir.join("copy.tcp");
        cp.save(&copy).expect("copy saves");
        prop_assert_eq!(std::fs::read(&copy).unwrap(), std::fs::read(&cp_path).unwrap());
        // The interrupted journal is always a valid strict read.
        read_journal(&dir.join("journal.tcj")).expect("journal is intact");
        std::fs::remove_dir_all(&dir).ok();
    }
}
