//! Cross-crate property tests on algorithm relationships: the CELF lazy
//! greedy is equivalent to the eager Algorithm 3, simple baselines are
//! feasible and dominated, and the approximation-guarantee bookkeeping of
//! Theorems 2–3 brackets every algorithm's placement.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching::placement::{gamma_bound, spec_guarantee_floor, theorem3_floor};
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

/// Deterministically builds a random scenario from compact parameters.
fn build_scenario(
    seed: u64,
    special: bool,
    num_servers: usize,
    num_users: usize,
    models_per_backbone: usize,
    capacity_gb: f64,
) -> Scenario {
    let library = if special {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(models_per_backbone)
            .build(seed)
    } else {
        GeneralCaseBuilder::paper_setup()
            .classes_per_backbone(models_per_backbone)
            .build(seed)
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = (0..num_servers)
        .map(|m| {
            EdgeServer::new(
                ServerId(m),
                area.sample_uniform(&mut rng),
                gigabytes(capacity_gb),
            )
            .unwrap()
        })
        .collect();
    use rand::Rng;
    let users: Vec<Point> = (0..num_users)
        .map(|_| {
            let anchor = servers[rng.gen_range(0..servers.len())].position();
            let r: f64 = rng.gen_range(5.0..260.0);
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            area.clamp(anchor.translated(r * a.cos(), r * a.sin()))
        })
        .collect();
    let demand = DemandConfig::paper_defaults()
        .generate(num_users, library.num_models(), &mut rng)
        .unwrap();
    Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The CELF lazy greedy returns exactly the same placement as the eager
    /// Algorithm 3 while never evaluating more marginal gains.
    #[test]
    fn lazy_greedy_is_equivalent_to_eager_greedy(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..5,
        num_users in 4usize..12,
        capacity_tenths in 2u32..14,
    ) {
        let scenario = build_scenario(
            seed,
            special,
            num_servers,
            num_users,
            3,
            capacity_tenths as f64 / 10.0,
        );
        let eager = TrimCachingGen::new().place(&scenario).unwrap();
        let lazy = TrimCachingGenLazy::new().place(&scenario).unwrap();
        prop_assert_eq!(&eager.placement, &lazy.placement);
        prop_assert!((eager.hit_ratio - lazy.hit_ratio).abs() < 1e-12);
        prop_assert!(lazy.evaluations <= eager.evaluations);
    }

    /// The popularity and random baselines always return feasible
    /// placements, and the sharing-aware greedy never loses to either.
    #[test]
    fn baselines_are_feasible_and_dominated(
        seed in 0u64..5000,
        num_servers in 2usize..5,
        num_users in 4usize..12,
        capacity_tenths in 2u32..14,
    ) {
        let scenario = build_scenario(seed, true, num_servers, num_users, 3, capacity_tenths as f64 / 10.0);
        let gen = TrimCachingGen::new().place(&scenario).unwrap();
        let popularity = TopPopularity::new().place(&scenario).unwrap();
        let random = RandomPlacement::new(seed).place(&scenario).unwrap();
        for outcome in [&popularity, &random] {
            prop_assert!((0.0..=1.0).contains(&outcome.hit_ratio));
            prop_assert!(scenario.satisfies_capacities(&outcome.placement));
        }
        prop_assert!(gen.hit_ratio >= popularity.hit_ratio - 1e-9);
        prop_assert!(gen.hit_ratio >= random.hit_ratio - 1e-9);
    }

    /// The Γ bracket of Theorem 3 admits every algorithm's placement, and
    /// its lower bound is itself feasible (so lower ≤ Γ ≤ upper).
    #[test]
    fn gamma_bracket_admits_all_placements(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..4,
        num_users in 4usize..10,
        capacity_tenths in 2u32..12,
    ) {
        let scenario = build_scenario(seed, special, num_servers, num_users, 3, capacity_tenths as f64 / 10.0);
        let bound = gamma_bound(&scenario).unwrap();
        prop_assert!(bound.lower <= bound.upper);
        for placement in [
            TrimCachingGen::new().place(&scenario).unwrap().placement,
            TrimCachingSpec::new().place(&scenario).unwrap().placement,
            TopPopularity::new().place(&scenario).unwrap().placement,
        ] {
            prop_assert!(bound.admits(placement.len()),
                "placement of {} exceeds upper bound {}", placement.len(), bound.upper);
        }
    }
}

/// Theorems 2 and 3 hold against the exhaustive optimum on instances small
/// enough to enumerate (the Fig. 6 regime).
#[test]
fn approximation_guarantees_hold_against_the_optimum() {
    for seed in [3_u64, 8, 21] {
        let library = SpecialCaseBuilder::paper_setup()
            .models_per_backbone(2)
            .build(seed);
        let topology = TopologyConfig::paper_small().with_capacity_gb(0.25);
        let scenario = topology.generate(&library, seed, 0).unwrap();
        let optimal = ExhaustiveSearch::new().place(&scenario).unwrap();
        let spec = TrimCachingSpec::new().place(&scenario).unwrap();
        let gen = TrimCachingGen::new().place(&scenario).unwrap();
        let bound = gamma_bound(&scenario).unwrap();

        assert!(optimal.hit_ratio >= spec.hit_ratio - 1e-9);
        assert!(optimal.hit_ratio >= gen.hit_ratio - 1e-9);
        assert!(
            spec.hit_ratio >= spec_guarantee_floor(optimal.hit_ratio, 0.1) - 1e-9,
            "seed {seed}: Theorem 2 violated"
        );
        assert!(
            gen.hit_ratio >= theorem3_floor(optimal.hit_ratio, bound.upper.max(1)) - 1e-9,
            "seed {seed}: Theorem 3 violated"
        );
    }
}
