//! Property-based equivalence of the two eligibility representations:
//! the dense `M × K × I` tensor and the coverage-pruned sparse CSR built
//! from the same scenario must agree on every point query and produce
//! **bit-identical** objective values for random placements.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trimcaching::modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching::modellib::ModelId;
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

/// Deterministically builds the same random snapshot twice: once with the
/// dense tensor forced, once with the sparse representation forced.
fn build_pair(
    seed: u64,
    special: bool,
    num_servers: usize,
    num_users: usize,
    models_per_backbone: usize,
) -> (Scenario, Scenario) {
    let library = if special {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(models_per_backbone)
            .build(seed)
    } else {
        GeneralCaseBuilder::paper_setup()
            .classes_per_backbone(models_per_backbone)
            .build(seed)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = (0..num_servers)
        .map(|m| {
            EdgeServer::new(ServerId(m), area.sample_uniform(&mut rng), gigabytes(0.6)).unwrap()
        })
        .collect();
    // A mix of users anchored near servers (covered, often multiply) and
    // fully random ones (sometimes uncovered) keeps both the eligible and
    // the empty rows of the indicator exercised.
    let users: Vec<Point> = (0..num_users)
        .map(|k| {
            if k % 3 == 0 {
                area.sample_uniform(&mut rng)
            } else {
                let anchor = servers[rng.gen_range(0..servers.len())].position();
                let r: f64 = rng.gen_range(5.0..260.0);
                let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                area.clamp(anchor.translated(r * a.cos(), r * a.sin()))
            }
        })
        .collect();
    let demand = DemandConfig::paper_defaults()
        .generate(num_users, library.num_models(), &mut rng)
        .unwrap();
    let base = Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand);
    let dense = base
        .clone()
        .eligibility_repr(EligibilityRepr::Dense)
        .build()
        .unwrap();
    let sparse = base
        .eligibility_repr(EligibilityRepr::Sparse)
        .build()
        .unwrap();
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Dense and sparse agree on `eligible(m, k, i)` for every triple,
    /// and on the candidate iterators.
    #[test]
    fn representations_agree_pointwise(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..5,
        num_users in 3usize..10,
        models_per_backbone in 2usize..4,
    ) {
        let (dense, sparse) = build_pair(seed, special, num_servers, num_users, models_per_backbone);
        prop_assert!(!dense.eligibility().is_sparse());
        prop_assert!(sparse.eligibility().is_sparse());
        let d = dense.eligibility();
        let s = sparse.eligibility();
        prop_assert_eq!(d.num_eligible(), s.num_eligible());
        for m in 0..num_servers {
            for k in 0..num_users {
                for i in 0..dense.num_models() {
                    prop_assert_eq!(
                        d.eligible(m, UserId(k), ModelId(i)),
                        s.eligible(m, UserId(k), ModelId(i)),
                        "disagreement at ({}, {}, {})", m, k, i
                    );
                }
            }
        }
        for m in 0..num_servers {
            prop_assert_eq!(
                d.pairs_for_server(m).collect::<Vec<_>>(),
                s.pairs_for_server(m).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                d.server_models(m).collect::<Vec<_>>(),
                s.server_models(m).collect::<Vec<_>>()
            );
        }
        for k in 0..num_users {
            for i in 0..dense.num_models() {
                prop_assert_eq!(
                    d.servers_for(UserId(k), ModelId(i)).collect::<Vec<_>>(),
                    s.servers_for(UserId(k), ModelId(i)).collect::<Vec<_>>()
                );
            }
        }
    }

    /// `hit_ratio` and `marginal_hits` are bit-identical across the two
    /// representations for random placements.
    #[test]
    fn objectives_are_bit_identical(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..5,
        num_users in 3usize..10,
        placements in 1usize..12,
    ) {
        let (dense, sparse) = build_pair(seed, special, num_servers, num_users, 3);
        let d = dense.objective();
        let s = sparse.objective();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut placement = dense.empty_placement();
        for _ in 0..placements {
            let m = ServerId(rng.gen_range(0..num_servers));
            let i = ModelId(rng.gen_range(0..dense.num_models()));
            // Marginal gains agree *before* the element is added...
            prop_assert_eq!(
                d.marginal_hits(&placement, m, i).to_bits(),
                s.marginal_hits(&placement, m, i).to_bits(),
                "marginal_hits diverged at ({:?}, {:?})", m, i
            );
            placement.place(m, i).unwrap();
            // ...and the hit ratio agrees after.
            prop_assert_eq!(
                d.hit_ratio(&placement).to_bits(),
                s.hit_ratio(&placement).to_bits(),
                "hit_ratio diverged"
            );
            prop_assert_eq!(
                dense.hit_ratio(&placement).to_bits(),
                sparse.hit_ratio(&placement).to_bits()
            );
        }
    }
}
