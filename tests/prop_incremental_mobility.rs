//! Property-based equivalence of the incremental mobility path and the
//! full snapshot rebuild: random move batches applied in place through
//! `Scenario::apply_user_moves` / `update_user_positions` must produce a
//! snapshot **bit-identical** to `with_user_positions` — same coverage,
//! allocation, rates, eligibility (dense and sparse) and hit ratios —
//! after every slot of a random trajectory.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trimcaching::modellib::builders::SpecialCaseBuilder;
use trimcaching::modellib::ModelId;
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

/// Deterministically builds one random snapshot with the given forced
/// eligibility representation.
fn build_scenario(
    seed: u64,
    num_servers: usize,
    num_users: usize,
    repr: EligibilityRepr,
) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = (0..num_servers)
        .map(|m| {
            EdgeServer::new(ServerId(m), area.sample_uniform(&mut rng), gigabytes(0.6)).unwrap()
        })
        .collect();
    // A mix of anchored (covered) and random (sometimes uncovered) users
    // keeps boundary crossings, uncovered rows and multi-coverage all
    // exercised as they move.
    let users: Vec<Point> = (0..num_users)
        .map(|k| {
            if k % 3 == 0 {
                area.sample_uniform(&mut rng)
            } else {
                let anchor = servers[rng.gen_range(0..servers.len())].position();
                let r: f64 = rng.gen_range(5.0..260.0);
                let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                area.clamp(anchor.translated(r * a.cos(), r * a.sin()))
            }
        })
        .collect();
    let demand = DemandConfig::paper_defaults()
        .generate(num_users, library.num_models(), &mut rng)
        .unwrap();
    Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .eligibility_repr(repr)
        .build()
        .unwrap()
}

/// Draws a random move batch: a subset of users jumps by a random step
/// (from a small nudge within a cell to a leap across the whole area).
fn random_moves(
    scenario: &Scenario,
    area: &DeploymentArea,
    rng: &mut StdRng,
) -> Vec<(usize, Point)> {
    let num_users = scenario.num_users();
    let batch = rng.gen_range(1..=num_users);
    (0..batch)
        .map(|_| {
            let k = rng.gen_range(0..num_users);
            let from = scenario.users()[k].position();
            let step: f64 = rng.gen_range(1.0..600.0);
            let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (
                k,
                area.clamp(from.translated(step * angle.cos(), step * angle.sin())),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental move batches produce snapshots bit-identical to full
    /// rebuilds, for both eligibility representations, slot after slot.
    #[test]
    fn incremental_moves_match_full_rebuild(
        seed in 0u64..5000,
        num_servers in 2usize..5,
        num_users in 4usize..12,
        slots in 1usize..5,
    ) {
        let area = DeploymentArea::paper_default();
        for repr in [EligibilityRepr::Dense, EligibilityRepr::Sparse] {
            let base = build_scenario(seed, num_servers, num_users, repr);
            let mut incremental = base.clone();
            let mut move_rng = StdRng::seed_from_u64(seed ^ 0x0B11);
            let mut placement_rng = StdRng::seed_from_u64(seed ^ 0x51A7);
            for _ in 0..slots {
                let moves = random_moves(&incremental, &area, &mut move_rng);
                let delta = incremental.apply_user_moves(&moves).unwrap();
                // The delta's refreshed set contains every mover.
                for &k in delta.moved_users() {
                    prop_assert!(delta.refreshed_users().contains(&k));
                }
                // Full rebuild from the evolved positions.
                let positions: Vec<Point> =
                    incremental.users().iter().map(|u| u.position()).collect();
                let rebuilt = base.with_user_positions(&positions).unwrap();
                prop_assert_eq!(&incremental, &rebuilt);
                // Hit ratios are bit-identical for random placements.
                let mut placement = incremental.empty_placement();
                for _ in 0..6 {
                    let m = ServerId(placement_rng.gen_range(0..num_servers));
                    let i = ModelId(placement_rng.gen_range(0..incremental.num_models()));
                    placement.place(m, i).unwrap();
                    prop_assert_eq!(
                        incremental.hit_ratio(&placement).to_bits(),
                        rebuilt.hit_ratio(&placement).to_bits()
                    );
                }
            }
        }
    }

    /// The full-position entry point diffs internally: feeding back the
    /// current positions is a no-op, and a full new position slice is
    /// equivalent to the corresponding sparse move batch.
    #[test]
    fn update_user_positions_diffs_internally(
        seed in 0u64..5000,
        num_servers in 2usize..4,
        num_users in 4usize..10,
    ) {
        for repr in [EligibilityRepr::Dense, EligibilityRepr::Sparse] {
            let base = build_scenario(seed, num_servers, num_users, repr);
            let mut scenario = base.clone();
            let current: Vec<Point> = scenario.users().iter().map(|u| u.position()).collect();
            let delta = scenario.update_user_positions(&current).unwrap();
            prop_assert!(delta.is_empty());
            prop_assert_eq!(&scenario, &base);
            // Move half the users via the full-slice entry point...
            let area = DeploymentArea::paper_default();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
            let mut positions = current.clone();
            let mut moves = Vec::new();
            for (k, p) in positions.iter_mut().enumerate().filter(|(k, _)| k % 2 == 0) {
                let fresh = area.sample_uniform(&mut rng);
                *p = fresh;
                moves.push((k, fresh));
            }
            let mut via_slice = base.clone();
            via_slice.update_user_positions(&positions).unwrap();
            // ...and the same users via the sparse batch: same snapshot.
            let mut via_batch = base.clone();
            via_batch.apply_user_moves(&moves).unwrap();
            prop_assert_eq!(&via_slice, &via_batch);
        }
    }
}
