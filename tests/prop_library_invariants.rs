//! Property-based tests on the parameter-sharing model library and the
//! storage accounting — the data structures every algorithm relies on.

use proptest::prelude::*;

use trimcaching::modellib::{ModelId, ModelLibrary};
use trimcaching::scenario::StorageTracker;

/// Strategy: a random parameter-sharing library described as a list of
/// models, each being a set of block indices into a shared pool plus a
/// private block. Block `j` of the pool has size `(j + 1) * 7` bytes.
fn arbitrary_library() -> impl Strategy<Value = ModelLibrary> {
    // Up to 10 models, each referencing up to 8 of 12 pool blocks.
    prop::collection::vec(prop::collection::btree_set(0usize..12, 1..8), 1..10).prop_map(|models| {
        let mut builder = ModelLibrary::builder();
        for (i, pool_blocks) in models.iter().enumerate() {
            let mut blocks: Vec<(String, u64)> = pool_blocks
                .iter()
                .map(|j| (format!("pool/block{j}"), (*j as u64 + 1) * 7))
                .collect();
            blocks.push((format!("model{i}/own"), 13 + i as u64));
            builder
                .add_model_with_blocks(format!("model{i}"), "task", &blocks)
                .expect("generated blocks are valid");
        }
        builder.build().expect("at least one model")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The deduplicated union size never exceeds the naive sum, and both
    /// are consistent with the per-model shared/specific split.
    #[test]
    fn union_size_is_bounded_by_naive_sum(library in arbitrary_library()) {
        let all: Vec<ModelId> = library.model_ids().collect();
        let union = library.union_size_bytes(all.iter().copied());
        let naive = library.total_naive_bytes();
        prop_assert!(union <= naive);
        prop_assert_eq!(union, library.total_unique_bytes());
        for id in library.model_ids() {
            let total = library.model_size_bytes(id).unwrap();
            let shared = library.shared_size_bytes(id).unwrap();
            let specific = library.specific_size_bytes(id).unwrap();
            prop_assert_eq!(total, shared + specific);
            // A single model's union is exactly its size.
            prop_assert_eq!(library.union_size_bytes([id]), total);
        }
    }

    /// The union size is monotone and subadditive in the model set.
    #[test]
    fn union_size_is_monotone_and_subadditive(
        library in arbitrary_library(),
        split in 1usize..9,
    ) {
        let all: Vec<ModelId> = library.model_ids().collect();
        let cut = split.min(all.len());
        let (a, b) = all.split_at(cut);
        let ua = library.union_size_bytes(a.iter().copied());
        let ub = library.union_size_bytes(b.iter().copied());
        let uall = library.union_size_bytes(all.iter().copied());
        prop_assert!(uall >= ua);
        prop_assert!(uall >= ub);
        prop_assert!(uall <= ua + ub);
    }

    /// The incremental storage tracker agrees with the closed-form union
    /// size after any sequence of insertions, and removal returns to the
    /// starting state.
    #[test]
    fn storage_tracker_matches_union_size(
        library in arbitrary_library(),
        order in prop::collection::vec(0usize..10, 1..20),
    ) {
        let mut tracker = StorageTracker::new(&library, u64::MAX);
        let mut inserted: Vec<ModelId> = Vec::new();
        for raw in order {
            let id = ModelId(raw % library.num_models());
            tracker.add(id).unwrap();
            if !inserted.contains(&id) {
                inserted.push(id);
            }
            prop_assert_eq!(
                tracker.used_bytes(),
                library.union_size_bytes(inserted.iter().copied())
            );
        }
        // Remove everything; usage must return to zero.
        for id in inserted.clone() {
            tracker.remove(id).unwrap();
        }
        prop_assert_eq!(tracker.used_bytes(), 0);
        prop_assert_eq!(tracker.naive_used_bytes(), 0);
    }

    /// Marginal cost of adding a model equals the difference of union
    /// sizes (the quantity greedy algorithms rely on).
    #[test]
    fn marginal_cost_equals_union_difference(
        library in arbitrary_library(),
        base in prop::collection::vec(0usize..10, 0..6),
        extra in 0usize..10,
    ) {
        let base: Vec<ModelId> = base
            .into_iter()
            .map(|i| ModelId(i % library.num_models()))
            .collect();
        let extra = ModelId(extra % library.num_models());
        let mut tracker = StorageTracker::new(&library, u64::MAX);
        for id in &base {
            tracker.add(*id).unwrap();
        }
        let marginal = tracker.marginal_bytes(extra).unwrap();
        let mut with_extra: Vec<ModelId> = base.clone();
        with_extra.push(extra);
        let expected = library.union_size_bytes(with_extra)
            - library.union_size_bytes(base.iter().copied());
        prop_assert_eq!(marginal, expected);
    }

    /// Subsetting a library preserves per-model sizes and never increases
    /// the union size of the kept models.
    #[test]
    fn subsets_preserve_model_sizes(library in arbitrary_library(), keep in 1usize..6) {
        let ids: Vec<ModelId> = library.model_ids().take(keep).collect();
        let subset = library.subset(&ids).unwrap();
        prop_assert_eq!(subset.num_models(), ids.len());
        for (new_idx, old_id) in ids.iter().enumerate() {
            prop_assert_eq!(
                subset.model_size_bytes(ModelId(new_idx)).unwrap(),
                library.model_size_bytes(*old_id).unwrap()
            );
        }
        prop_assert_eq!(
            subset.total_unique_bytes(),
            library.union_size_bytes(ids.iter().copied())
        );
    }
}
