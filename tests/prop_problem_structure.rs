//! Property-based tests on the optimisation problem's structure
//! (Proposition 1 of the paper) and on the algorithms' feasibility
//! guarantees, over randomly generated scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::modellib::builders::{GeneralCaseBuilder, SpecialCaseBuilder};
use trimcaching::placement::{
    check_objective_monotonicity, check_objective_submodularity, check_storage_submodularity,
    IndependentCaching, PlacementAlgorithm, TrimCachingGen, TrimCachingSpec,
};
use trimcaching::prelude::*;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

/// Deterministically builds a random scenario from compact parameters.
fn build_scenario(
    seed: u64,
    special: bool,
    num_servers: usize,
    num_users: usize,
    models_per_backbone: usize,
    capacity_gb: f64,
) -> Scenario {
    let library = if special {
        SpecialCaseBuilder::paper_setup()
            .models_per_backbone(models_per_backbone)
            .build(seed)
    } else {
        GeneralCaseBuilder::paper_setup()
            .classes_per_backbone(models_per_backbone)
            .build(seed)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let area = DeploymentArea::paper_default();
    let servers: Vec<EdgeServer> = (0..num_servers)
        .map(|m| {
            EdgeServer::new(
                ServerId(m),
                area.sample_uniform(&mut rng),
                gigabytes(capacity_gb),
            )
            .unwrap()
        })
        .collect();
    // Anchor users near servers so the latency constraints are non-trivial.
    use rand::Rng;
    let users: Vec<Point> = (0..num_users)
        .map(|_| {
            let anchor = servers[rng.gen_range(0..servers.len())].position();
            let r: f64 = rng.gen_range(5.0..260.0);
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            area.clamp(anchor.translated(r * a.cos(), r * a.sin()))
        })
        .collect();
    let demand = DemandConfig::paper_defaults()
        .generate(num_users, library.num_models(), &mut rng)
        .unwrap();
    Scenario::builder()
        .library(library)
        .servers(servers)
        .users_at(&users)
        .demand(demand)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Proposition 1: the objective is monotone submodular and the storage
    /// constraint is submodular, on random scenarios of both library kinds.
    #[test]
    fn proposition_1_structure_holds(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..4,
        num_users in 4usize..10,
        models_per_backbone in 2usize..4,
    ) {
        let scenario = build_scenario(seed, special, num_servers, num_users, models_per_backbone, 0.6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let objective = check_objective_submodularity(&scenario, 60, &mut rng);
        prop_assert!(objective.holds(), "objective submodularity violated: {objective:?}");
        let storage = check_storage_submodularity(&scenario, 60, &mut rng);
        prop_assert!(storage.holds(), "storage submodularity violated: {storage:?}");
        let monotone = check_objective_monotonicity(&scenario, 30, &mut rng);
        prop_assert!(monotone.holds(), "objective monotonicity violated: {monotone:?}");
    }

    /// Every algorithm always returns a placement within its storage
    /// budget, with a hit ratio in [0, 1], and sharing-aware algorithms
    /// never lose to the sharing-oblivious baseline.
    #[test]
    fn algorithms_always_return_feasible_placements(
        seed in 0u64..5000,
        special in any::<bool>(),
        num_servers in 2usize..5,
        num_users in 4usize..12,
        capacity_tenths in 2u32..16,
    ) {
        let capacity_gb = capacity_tenths as f64 / 10.0;
        let scenario = build_scenario(seed, special, num_servers, num_users, 3, capacity_gb);
        let spec = TrimCachingSpec::new().place(&scenario).unwrap();
        let gen = TrimCachingGen::new().place(&scenario).unwrap();
        let independent = IndependentCaching::new().place(&scenario).unwrap();
        for outcome in [&spec, &gen, &independent] {
            prop_assert!((0.0..=1.0).contains(&outcome.hit_ratio));
            prop_assert!(scenario.satisfies_capacities(&outcome.placement));
        }
        prop_assert!(gen.hit_ratio >= independent.hit_ratio - 1e-9);
        prop_assert!(spec.hit_ratio >= independent.hit_ratio - 1e-9);
        // Spec's successive-greedy with the rounding DP may differ slightly
        // from Gen, but never collapses.
        prop_assert!(spec.hit_ratio >= gen.hit_ratio - 0.1);
    }

    /// Giving every server more storage never reduces the hit ratio of
    /// TrimCaching Gen (capacity monotonicity).
    #[test]
    fn more_capacity_never_hurts(
        seed in 0u64..2000,
        num_servers in 2usize..4,
        num_users in 4usize..10,
    ) {
        let small = build_scenario(seed, true, num_servers, num_users, 3, 0.4);
        let large = build_scenario(seed, true, num_servers, num_users, 3, 1.4);
        let u_small = TrimCachingGen::new().place(&small).unwrap().hit_ratio;
        let u_large = TrimCachingGen::new().place(&large).unwrap().hit_ratio;
        prop_assert!(u_large >= u_small - 1e-9, "{u_large} < {u_small}");
    }
}
