//! Property tests of the sweep-spec grammar: the order in which a spec
//! file declares its keys is irrelevant — any permutation of the same
//! lines parses into the same `SweepSpec`, the same canonical
//! fingerprint, and therefore the exact same per-cell seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use trimcaching::sim::sweep::parse_spec;

/// All policy names, indexed by a non-empty bitmask.
const POLICIES: [&str; 3] = ["lru", "lfu", "cost-lfu"];
/// All workload-family names, indexed by a non-empty bitmask.
const WORKLOADS: [&str; 6] = [
    "stationary",
    "shift",
    "flash-crowd",
    "diurnal",
    "regional",
    "commuter",
];

/// Selects the mask's subset of `names`, comma-joined.
fn masked(names: &[&str], mask: usize) -> String {
    names
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, n)| *n)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Comma-joins a list of displayable values.
fn joined<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(T::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn key_declaration_order_never_changes_the_cell_seeds(
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        users in collection::vec(50usize..500, 1..3),
        cap_tenths in collection::vec(1usize..12, 1..3),
        policy_mask in 1usize..8,
        workload_mask in 1usize..64,
        shards in collection::vec(1usize..5, 1..3),
        duration in 30usize..300,
    ) {
        let caps: Vec<f64> = cap_tenths.iter().map(|&t| t as f64 / 10.0).collect();
        let lines = vec![
            format!("seed = {seed}"),
            format!("duration_s = {duration}"),
            format!("users = {}", joined(&users)),
            format!("capacity_gb = {}", joined(&caps)),
            format!("policies = {}", masked(&POLICIES, policy_mask)),
            format!("workloads = {}", masked(&WORKLOADS, workload_mask)),
            format!("shards = {}", joined(&shards)),
            "storage_tiers = flat, 1:2:0.5".to_string(),
            "faults = off, on".to_string(),
        ];

        let canonical_order = parse_spec(&lines.join("\n")).expect("ordered spec parses");

        let mut shuffled = lines;
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let shuffled_order = parse_spec(&shuffled.join("\n")).expect("shuffled spec parses");

        prop_assert_eq!(&canonical_order, &shuffled_order);
        prop_assert_eq!(canonical_order.fingerprint(), shuffled_order.fingerprint());

        let a = canonical_order.cells().expect("cells expand");
        let b = shuffled_order.cells().expect("cells expand");
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.seed, y.seed, "cell {} seed must not depend on key order", x.index);
        }
    }
}
