//! Cross-crate integration tests for the online re-placement loop and the
//! LoRA-marketplace library, exercised through the public facade API.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trimcaching::prelude::*;
use trimcaching::sim::replacement::replay_with_policy;
use trimcaching::wireless::geometry::{DeploymentArea, Point};

fn paper_like_scenario(seed: u64) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(seed);
    TopologyConfig::paper_defaults()
        .with_servers(5)
        .with_users(10)
        .generate(&library, seed, 0)
        .expect("topology generates")
}

#[test]
fn adaptive_replacement_never_trails_the_static_placement_on_average() {
    let scenario = paper_like_scenario(11);
    let area = DeploymentArea::paper_default();
    let algorithm = TrimCachingGen::new();
    let replay = ReplayConfig {
        total_minutes: 60,
        sample_interval_minutes: 20,
        fading_realisations: 0,
    };
    let static_trace =
        replay_with_policy(&scenario, area, &algorithm, None, &replay, 3, 5).unwrap();
    let adaptive_trace = replay_with_policy(
        &scenario,
        area,
        &algorithm,
        Some(&ReplacementPolicy::with_trigger_drop(0.02)),
        &replay,
        3,
        5,
    )
    .unwrap();
    assert_eq!(static_trace.times_min, adaptive_trace.times_min);
    assert_eq!(static_trace.replacements, 0);
    assert!(adaptive_trace.mean_hit_ratio() >= static_trace.mean_hit_ratio() - 1e-9);
    // Whatever was migrated is bounded by pushing every server's full
    // deduplicated catalogue once per re-placement.
    let per_replacement_ceiling =
        scenario.library().total_unique_bytes() * scenario.num_servers() as u64;
    assert!(
        adaptive_trace.migrated_bytes
            <= per_replacement_ceiling * adaptive_trace.replacements.max(1) as u64
    );
}

#[test]
fn tighter_triggers_cannot_reduce_the_replacement_count() {
    let scenario = paper_like_scenario(29);
    let area = DeploymentArea::paper_default();
    let algorithm = TrimCachingGen::new();
    let replay = ReplayConfig {
        total_minutes: 80,
        sample_interval_minutes: 20,
        fading_realisations: 0,
    };
    let mut previous = usize::MAX;
    for trigger in [0.01, 0.05, 0.2] {
        let trace = replay_with_policy(
            &scenario,
            area,
            &algorithm,
            Some(&ReplacementPolicy::with_trigger_drop(trigger)),
            &replay,
            9,
            13,
        )
        .unwrap();
        assert!(
            trace.replacements <= previous,
            "trigger {trigger}: {} replacements after {previous} with a looser trigger",
            trace.replacements
        );
        previous = trace.replacements;
    }
}

#[test]
fn lora_marketplace_end_to_end_shows_the_sharing_advantage() {
    // A LoRA catalogue: one 6 GB foundation, 60 tenants of ~40 MB each.
    let library = LoraLibraryBuilder::marketplace()
        .adapters_per_foundation(60)
        .build(3);
    let stats = LibraryStats::compute(&library);
    assert!(stats.sharing_savings_ratio > 0.9);

    let mut rng = StdRng::seed_from_u64(5);
    let area = DeploymentArea::new(400.0).unwrap();
    let users: Vec<Point> = (0..20).map(|_| area.sample_uniform(&mut rng)).collect();
    let demand = DemandConfig {
        zipf_exponent: 1.1,
        // Multi-gigabyte LLM downloads get a minutes-scale installation
        // budget rather than the paper's sub-second budget for small models.
        deadline_range_s: (120.0, 240.0),
        inference_range_s: (0.5, 2.0),
        ..DemandConfig::paper_defaults()
    }
    .generate(20, library.num_models(), &mut rng)
    .unwrap();
    let scenario = Scenario::builder()
        .library(library)
        .servers(vec![EdgeServer::new(
            ServerId(0),
            Point::new(200.0, 200.0),
            gigabytes(8.0),
        )
        .unwrap()])
        .users_at(&users)
        .demand(demand)
        .build()
        .unwrap();

    let gen = TrimCachingGen::new().place(&scenario).unwrap();
    let lazy = TrimCachingGenLazy::new().place(&scenario).unwrap();
    let independent = IndependentCaching::new().place(&scenario).unwrap();

    assert_eq!(gen.placement, lazy.placement);
    // The 8 GB server fits one tenant without sharing, dozens with it.
    assert!(independent.placement.len() <= 1);
    assert!(gen.placement.len() > 10);
    assert!(gen.hit_ratio > independent.hit_ratio);
    assert!(scenario.satisfies_capacities(&gen.placement));
}
