//! Integration tests of the online serving runtime: determinism, basic
//! sanity of the streamed metrics, the shared-block-aware policy's edge
//! over plain LRU, and the headline scale target (≥100k requests over
//! ≥10k users, reproducibly).

use trimcaching::modellib::builders::{FoundationSpec, LoraLibraryBuilder, SpecialCaseBuilder};
use trimcaching::prelude::*;
use trimcaching::runtime::{serve, serve_ensemble, CostAwareLfu, Lru, ServeConfig};
use trimcaching::wireless::RadioParams;

/// The paper's default footprint (10 servers, 1 km²) at a configurable
/// scale, with a parameter-sharing special-case library.
fn scenario(num_users: usize, models_per_backbone: usize, capacity_gb: f64) -> Scenario {
    let library = SpecialCaseBuilder::paper_setup()
        .models_per_backbone(models_per_backbone)
        .build(2024);
    TopologyConfig::paper_defaults()
        .with_users(num_users)
        .with_capacity_gb(capacity_gb)
        .generate(&library, 2024, 0)
        .expect("topology generates")
}

/// A dense-user serving scenario the paper's 30-user snapshot cannot
/// express: thousands of users per cell downloading lightweight
/// LoRA-adapted models (small shared foundations plus per-tenant
/// adapters). The activity probability is set to the *measured*
/// concurrency of the live workload (rate × sub-second transfers ≈ 1%)
/// instead of the offline p_A = 0.5, which would starve every user at
/// this density.
fn dense_serving_scenario(num_users: usize) -> Scenario {
    let foundations = (0..3)
        .map(|f| FoundationSpec::new(format!("edge-fm{f}"), 4, 8_000_000))
        .collect();
    let library = LoraLibraryBuilder::with_foundations(foundations)
        .adapters_per_foundation(8)
        .adapter_size_bytes(1_500_000)
        .head_size_bytes(500_000)
        .build(2024);
    let radio = RadioParams::builder()
        .activity_probability(0.01)
        .build()
        .expect("radio params are valid");
    let mut topology = TopologyConfig::paper_defaults()
        .with_users(num_users)
        .with_capacity_gb(0.04);
    topology.radio = radio;
    topology
        .generate(&library, 2024, 0)
        .expect("topology generates")
}

#[test]
fn smoke_run_is_sane() {
    let s = scenario(20, 3, 0.5);
    let config = ServeConfig::smoke().with_seed(11);
    let report = serve(&s, &Lru, None, &config).expect("serve runs");
    let m = &report.metrics;
    assert!(m.requests > 0);
    assert_eq!(m.requests, m.hits + m.misses_served + m.rejected);
    assert!((0.0..=1.0).contains(&m.hit_ratio()));
    assert!(m.served_ratio() >= m.hit_ratio());
    // Event timestamps are non-decreasing: the windowed trace is in
    // strictly increasing time order and the last event stayed within
    // the configured horizon.
    let windows = m.windows();
    assert!(!windows.is_empty());
    assert!(windows.windows(2).all(|w| w[0].end_s < w[1].end_s));
    assert!(m.last_event_s() <= config.duration_s);
    // Window counters sum back to the global counters.
    assert_eq!(windows.iter().map(|w| w.requests).sum::<u64>(), m.requests);
    assert_eq!(windows.iter().map(|w| w.hits).sum::<u64>(), m.hits);
    // Latency percentiles exist whenever something was served, and are
    // monotone.
    if m.hits + m.misses_served > 0 {
        let (p50, p95, p99) = (
            m.p50_latency_s().unwrap(),
            m.p95_latency_s().unwrap(),
            m.p99_latency_s().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 0.0 && p99 < 1e3);
    }
}

#[test]
fn identical_seeds_produce_identical_metric_traces() {
    let s = scenario(25, 3, 0.5);
    let config = ServeConfig::smoke().with_seed(42).with_mobility_slot_s(5.0);
    let a = serve(&s, &CostAwareLfu, None, &config).expect("first run");
    let b = serve(&s, &CostAwareLfu, None, &config).expect("second run");
    assert_eq!(a, b, "same seed must reproduce the full report");
    assert_eq!(a.metrics.windows(), b.metrics.windows());
    let c = serve(&s, &CostAwareLfu, None, &config.with_seed(43)).expect("third run");
    assert_ne!(
        a.metrics.windows(),
        c.metrics.windows(),
        "different seeds should produce different traces"
    );
}

/// The acceptance bar of the runtime tentpole: the shared-block-aware
/// policy must beat plain LRU on final hit ratio. Capacity is tight
/// enough that eviction decisions matter, and the library's frozen
/// backbones make sharing-blind eviction costly.
#[test]
fn cost_aware_policy_beats_plain_lru() {
    let s = scenario(30, 10, 0.25);
    let config = ServeConfig::paper_defaults().with_seed(2024);
    let runs = 3;
    let mean = |policy: &dyn trimcaching::runtime::EvictionPolicy| {
        let reports = serve_ensemble(&s, policy, None, &config, runs, 0).expect("ensemble runs");
        reports.iter().map(|r| r.metrics.hit_ratio()).sum::<f64>() / runs as f64
    };
    let lru = mean(&Lru);
    let cost_aware = mean(&CostAwareLfu);
    assert!(
        cost_aware > lru,
        "shared-block-aware eviction ({cost_aware:.4}) must beat plain LRU ({lru:.4})"
    );
}

/// Headline scale: ≥100k requests over 10k users replay deterministically
/// — identical seeds yield identical windowed hit-ratio traces — and the
/// engine actually serves at that density (the workload is not a
/// degenerate all-rejected stream).
#[test]
fn serves_100k_requests_over_10k_users_deterministically() {
    let s = dense_serving_scenario(10_000);
    assert!(s.num_users() >= 10_000);
    // 0.05 Hz x 250 s = 12.5 expected requests per user: the Poisson
    // total concentrates far above the 100k floor.
    let config = ServeConfig::paper_defaults()
        .with_duration_s(250.0)
        .with_request_rate_hz(0.05)
        .with_seed(2024);
    let a = serve(&s, &CostAwareLfu, None, &config).expect("first run");
    assert!(
        a.metrics.requests >= 100_000,
        "only {} requests fired",
        a.metrics.requests
    );
    assert!((0.0..=1.0).contains(&a.metrics.hit_ratio()));
    assert!(
        a.metrics.hit_ratio() > 0.2,
        "dense serving should produce real hits, got {:.4}",
        a.metrics.hit_ratio()
    );
    let windows = a.metrics.windows();
    assert!(windows.windows(2).all(|w| w[0].end_s < w[1].end_s));

    let b = serve(&s, &CostAwareLfu, None, &config).expect("second run");
    assert_eq!(
        a.metrics.windows(),
        b.metrics.windows(),
        "identical seeds must yield identical windowed hit-ratio traces"
    );
    assert_eq!(a, b);
}

#[test]
fn warm_start_from_offline_placement_raises_the_early_hit_ratio() {
    use trimcaching::placement::{PlacementAlgorithm, TrimCachingGen};
    let s = scenario(30, 3, 1.0);
    let placement = TrimCachingGen::new()
        .place(&s)
        .expect("gen places")
        .placement;
    let config = ServeConfig::smoke().with_seed(5);
    let cold = serve(&s, &CostAwareLfu, None, &config).expect("cold run");
    let warm = serve(&s, &CostAwareLfu, Some(&placement), &config).expect("warm run");
    let first_window_hits = |r: &trimcaching::runtime::ServeReport| {
        r.metrics
            .windows()
            .first()
            .map(|w| w.hit_ratio())
            .unwrap_or(0.0)
    };
    assert!(first_window_hits(&warm) >= first_window_hits(&cold));
    assert!(warm.metrics.hit_ratio() >= cold.metrics.hit_ratio());
}
