//! Region-sharded serving integration tests: the thread-count
//! determinism contract end to end, on a city topology with clustered
//! demand, mobility, the control loop and durable persistence all on.
//!
//! The central claims under test:
//!
//! * the merged trace of a sharded run is **byte-identical for any
//!   worker-thread count** (journal files compared byte for byte);
//! * a sharded run killed mid-window resumes from the shared checkpoint
//!   and its per-shard journals into a byte-identical continuation;
//! * one shard reproduces the classic single-engine trace exactly.

use std::path::{Path, PathBuf};

use trimcaching::runtime::{
    serve, ControlConfig, CostAwareLfu, PersistConfig, ServeConfig, ShardedServeEngine,
};
use trimcaching::scenario::Scenario;
use trimcaching::sim::experiments::{LibraryKind, RunConfig};
use trimcaching::sim::CityScaleConfig;

/// A fresh scratch directory under the system temp dir, unique per
/// test and process so parallel test runs never collide.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tc-sharded-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A compact city: 2 km × 2 km, Poisson servers, 2 000 users on 32
/// clustered demand classes, sparse eligibility — the representation
/// mix the sharded engine exists for.
fn city_scenario() -> Scenario {
    let run = RunConfig::smoke();
    let library = run.build_library(LibraryKind::Special);
    let mut city = CityScaleConfig::district()
        .with_users(2_000)
        .with_demand_classes(32);
    city.area_side_m = 2_000.0;
    city.capacity_gb = 0.4;
    city.generate(&library, 11, 0).expect("city generates")
}

/// Mobility, control and persistence all on, so shard merges, masked
/// re-planning and shared checkpoints are all exercised.
fn full_config(seed: u64, dir: &Path) -> ServeConfig {
    ServeConfig::smoke()
        .with_duration_s(120.0)
        .with_request_rate_hz(0.05)
        .with_seed(seed)
        .with_mobility_slot_s(10.0)
        .with_control(ControlConfig::paper_defaults().with_tick_s(30.0))
        .with_persist(PersistConfig::new(dir.to_path_buf()).with_checkpoint_every_s(40.0))
}

fn journal_bytes(path: PathBuf) -> Vec<u8> {
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The CI release-profile smoke: same seed at 1 and 4 worker threads
/// must produce byte-identical per-shard journals and identical merged
/// reports; a mid-run kill must resume into the same bytes as well.
#[test]
fn sharded_determinism_smoke() {
    let scenario = city_scenario();
    let shards = 4;

    // 1 worker vs 4 workers: byte-identical journals, identical report.
    let serial_dir = scratch_dir("smoke-t1");
    let pooled_dir = scratch_dir("smoke-t4");
    let serial = ShardedServeEngine::new(
        &scenario,
        &CostAwareLfu,
        full_config(42, &serial_dir),
        shards,
    )
    .expect("engine builds")
    .with_threads(1)
    .run()
    .expect("serial run");
    let pooled = ShardedServeEngine::new(
        &scenario,
        &CostAwareLfu,
        full_config(42, &pooled_dir),
        shards,
    )
    .expect("engine builds")
    .with_threads(4)
    .run()
    .expect("pooled run");
    assert_eq!(
        serial, pooled,
        "the merged report must not depend on the worker-thread count"
    );
    assert!(serial.metrics.requests > 0, "the run must serve traffic");
    for shard in 0..shards {
        assert_eq!(
            journal_bytes(PersistConfig::new(&serial_dir).journal_shard_path(shard)),
            journal_bytes(PersistConfig::new(&pooled_dir).journal_shard_path(shard)),
            "shard {shard} journal must be byte-identical at 1 and 4 workers"
        );
    }

    // Kill mid-window (past the t=40 and t=80 checkpoints), resume,
    // and require the continuation to reproduce the uninterrupted run.
    let killed_dir = scratch_dir("smoke-killed");
    ShardedServeEngine::new(
        &scenario,
        &CostAwareLfu,
        full_config(42, &killed_dir),
        shards,
    )
    .expect("engine builds")
    .with_threads(4)
    .run_until(97.0)
    .expect("partial run");
    let persist = PersistConfig::new(&killed_dir).with_checkpoint_every_s(40.0);
    let resumed = ShardedServeEngine::resume(&scenario, &CostAwareLfu, persist.clone())
        .expect("resume")
        .with_threads(4)
        .run()
        .expect("resumed run");
    assert_eq!(
        serial, resumed,
        "a killed-and-resumed sharded run must reproduce the uninterrupted trace"
    );
    for shard in 0..shards {
        assert_eq!(
            journal_bytes(PersistConfig::new(&serial_dir).journal_shard_path(shard)),
            journal_bytes(persist.journal_shard_path(shard)),
            "shard {shard} journal must be byte-identical after kill/resume"
        );
    }
}

/// `R = 1` is the classic engine: same report, and the single shard
/// journal is byte-for-byte the classic journal file.
#[test]
fn one_shard_matches_the_classic_engine_on_a_city() {
    let scenario = city_scenario();
    let classic_dir = scratch_dir("classic");
    let sharded_dir = scratch_dir("r1");
    let classic = serve(
        &scenario,
        &CostAwareLfu,
        None,
        &full_config(7, &classic_dir),
    )
    .expect("classic run");
    let sharded =
        ShardedServeEngine::new(&scenario, &CostAwareLfu, full_config(7, &sharded_dir), 1)
            .expect("engine builds")
            .run()
            .expect("sharded run");
    assert_eq!(classic, sharded, "R=1 must reproduce the classic engine");
    assert_eq!(
        journal_bytes(PersistConfig::new(&classic_dir).journal_path()),
        journal_bytes(PersistConfig::new(&sharded_dir).journal_shard_path(0)),
    );
}
