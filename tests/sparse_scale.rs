//! Integration test for the coverage-pruned sparse eligibility at scale:
//! a 200-server / 5 000-user district built with the sparse
//! representation must drive lazy-greedy placement to the *identical*
//! result the dense path produces, while never materialising the
//! `M × K × I` cube.

use trimcaching::modellib::ModelId;
use trimcaching::placement::{PlacementAlgorithm, TrimCachingGenLazy};
use trimcaching::prelude::*;
use trimcaching::sim::CityScaleConfig;

/// A ~200-server / 5 000-user Poisson district (the `district` preset's
/// native scale), downscaled from the 1 000-server / 50 000-user city of
/// the bench harness so the dense reference fits the test budget.
fn district(repr: EligibilityRepr) -> Scenario {
    let library = trimcaching::modellib::builders::SpecialCaseBuilder::paper_setup()
        .models_per_backbone(3)
        .build(2024);
    let config = CityScaleConfig::district().with_repr(repr);
    config.generate(&library, 2024, 0).expect("district builds")
}

#[test]
fn lazy_greedy_is_identical_on_sparse_and_dense_districts() {
    let sparse = district(EligibilityRepr::Sparse);
    assert!(sparse.eligibility().is_sparse());
    assert!(sparse.num_servers() >= 150, "Poisson draw far below λ·area");
    assert_eq!(sparse.num_users(), 5_000);
    // The indicator really is coverage-pruned: a small fraction of the
    // cube is eligible.
    assert!(
        sparse.eligibility().density() < 0.1,
        "density {} is not city-sparse",
        sparse.eligibility().density()
    );

    let dense = district(EligibilityRepr::Dense);
    assert!(!dense.eligibility().is_sparse());
    assert_eq!(dense.num_servers(), sparse.num_servers());
    assert_eq!(
        dense.eligibility().num_eligible(),
        sparse.eligibility().num_eligible()
    );

    let lazy = TrimCachingGenLazy::new();
    let from_sparse = lazy.place(&sparse).expect("sparse placement runs");
    let from_dense = lazy.place(&dense).expect("dense placement runs");
    assert_eq!(
        from_sparse.placement, from_dense.placement,
        "sparse and dense paths must select the identical placement"
    );
    assert_eq!(
        from_sparse.hit_ratio.to_bits(),
        from_dense.hit_ratio.to_bits(),
        "hit ratios must be bit-identical"
    );
    assert!(from_sparse.hit_ratio > 0.0);
    assert!(sparse.satisfies_capacities(&from_sparse.placement));

    // Cross-evaluation: the sparse scenario scores the dense path's
    // placement identically, and vice versa.
    assert_eq!(
        sparse.hit_ratio(&from_dense.placement).to_bits(),
        dense.hit_ratio(&from_sparse.placement).to_bits()
    );
}

#[test]
fn sparse_district_serves_requests_through_the_runtime() {
    // The runtime's serving path iterates candidate servers through the
    // sparse view; a short replay must produce hits on a warm start.
    let sparse = district(EligibilityRepr::Sparse);
    let mut placement = sparse.empty_placement();
    for m in 0..sparse.num_servers() {
        for i in 0..sparse.num_models().min(3) {
            placement.place(ServerId(m), ModelId(i)).unwrap();
        }
    }
    let config = ServeConfig::smoke()
        .with_duration_s(5.0)
        .with_request_rate_hz(0.05);
    let report = serve(&sparse, &Lru, Some(&placement), &config).expect("replay runs");
    assert!(report.metrics.requests > 0);
    assert!(report.metrics.hits > 0, "warm-started caches must hit");
}
