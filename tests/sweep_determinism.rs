//! Sweep-harness integration tests: the report artefacts (CSV, JSON,
//! markdown) of a grid that includes a faulted + sharded cell must be
//! **byte-identical for any sweep worker count**, the CSV must parse
//! back into the exact report, and the checked-in example spec file
//! must round-trip through the parser into the same fingerprint the
//! canonical writer produces.

use trimcaching::sim::sweep::{parse_csv, parse_spec, to_csv, to_json, to_markdown, write_spec};
use trimcaching::sim::{run_sweep, PolicyKind, SweepSpec, WorkloadFamily};

/// A compact grid whose last cells run faulted on two shards — the
/// hardest determinism case: fault storms, failover and the shard merge
/// all active at once.
fn faulted_sharded_spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.name = "integration".into();
    spec.duration_s = 60.0;
    spec.users = vec![120];
    spec.area_side_m = 1_000.0;
    spec.demand_classes = 8;
    spec.workloads = vec![WorkloadFamily::Stationary, WorkloadFamily::FlashCrowd];
    spec.policies = vec![PolicyKind::CostLfu];
    spec.shards = vec![1, 2];
    spec.faults = vec![false, true];
    spec
}

#[test]
fn sweep_artefacts_are_byte_identical_across_worker_counts() {
    let spec = faulted_sharded_spec();
    let one = run_sweep(&spec, 1).expect("1-worker sweep");
    let four = run_sweep(&spec, 4).expect("4-worker sweep");

    assert_eq!(one, four, "reports must match structurally");
    assert_eq!(to_csv(&one), to_csv(&four), "CSV must be byte-identical");
    assert_eq!(to_json(&one), to_json(&four), "JSON must be byte-identical");
    assert_eq!(
        to_markdown(&one),
        to_markdown(&four),
        "markdown must be byte-identical"
    );

    // The grid really contains the hard cells.
    assert_eq!(one.outcomes.len(), 8);
    let faulted_sharded = one
        .outcomes
        .iter()
        .filter(|o| o.cell.faults && o.cell.shards == 2)
        .count();
    assert_eq!(faulted_sharded, 2, "two faulted cells run on two shards");
    assert!(one.outcomes.iter().all(|o| o.requests > 0));

    // The CSV parses back into the exact report, bit for bit.
    let parsed = parse_csv(&to_csv(&one)).expect("CSV parses");
    assert_eq!(parsed, one, "CSV round-trip must be lossless");
}

#[test]
fn cell_seeds_derive_from_the_spec_alone() {
    let spec = faulted_sharded_spec();
    let fingerprint = spec.fingerprint();
    let cells = spec.cells().expect("cells expand");
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.index, i);
        assert_eq!(
            cell.seed,
            trimcaching::sim::sweep::cell_seed(fingerprint, i),
            "cell {i}: seed must be a pure function of (fingerprint, index)"
        );
    }
    // Re-parsing the canonical text reproduces the same fingerprint and
    // therefore the same seeds.
    let reparsed = parse_spec(&write_spec(&spec)).expect("canonical text parses");
    assert_eq!(reparsed.fingerprint(), fingerprint);
}

#[test]
fn the_checked_in_family_spec_parses_and_expands() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/specs/families.sweep"))
            .expect("specs/families.sweep is checked in");
    let spec = parse_spec(&text).expect("spec parses");
    assert_eq!(spec.name, "families");
    assert_eq!(spec.num_cells(), 32);
    assert_eq!(spec.workloads.len(), 4, "four new workload families");
    assert_eq!(spec.policies.len(), 2);
    assert_eq!(spec.shards, vec![1, 2]);
    // Canonical round-trip: the fingerprint comes from the canonical
    // form, so re-parsing the writer's output is a fixed point.
    let canonical = write_spec(&spec);
    let reparsed = parse_spec(&canonical).expect("canonical form parses");
    assert_eq!(reparsed, spec);
    assert_eq!(write_spec(&reparsed), canonical);
}
