//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's bench targets use
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`]) with a
//! deliberately simple measurement loop: every benchmark is warmed up
//! once and then timed over a handful of iterations, reporting the mean
//! wall-clock time per iteration on stderr. There is no statistical
//! analysis, HTML report or comparison to saved baselines — the targets
//! exist to exercise and time the hot paths, and their table output
//! (printed by the bench functions themselves) is what EXPERIMENTS.md
//! records.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    /// Mean time per iteration of the last [`Bencher::iter`] call.
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last = Some(start.elapsed() / self.iterations as u32);
    }
}

fn run_one(name: &str, iterations: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        last: None,
    };
    f(&mut bencher);
    match bencher.last {
        Some(mean) => eprintln!("bench {name:<50} {mean:>12.2?}/iter ({iterations} iters)"),
        None => eprintln!("bench {name:<50} (no measurement)"),
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (mapped onto the iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).clamp(1, 20);
        self
    }

    /// Configures measurement time; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iterations, f);
        self
    }

    /// Benchmarks `f` with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iterations, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (nothing to flush in this stand-in).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.to_string(), 10, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: 10,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench binaries receive harness flags (e.g. --bench); they
            // carry no meaning for this stand-in and are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 3 * 3));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, routine);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
