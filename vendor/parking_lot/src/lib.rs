//! Offline vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` locking API the workspace uses (`Mutex` and
//! `RwLock` without lock poisoning) on top of the standard library
//! primitives. Poisoning is translated into a panic propagation, which
//! matches how the workspace treats panics inside worker threads (they
//! abort the computation anyway).

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` never returns a poison error (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }
}

/// A reader-writer lock without poisoning (parking_lot style).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
