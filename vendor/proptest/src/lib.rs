//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait (ranges, `any::<bool>()`,
//! `prop::collection::{vec, btree_set}`, `prop_map`), [`ProptestConfig`]
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! generator seeded from the test name (no `PROPTEST_*` environment
//! handling) and there is **no shrinking** — a failing case panics with
//! the assertion message directly. That keeps the harness tiny while
//! preserving the property coverage of the test suite.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for a type (only `bool` is needed in-tree).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_any_uniform {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_any_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` with a *target* size drawn from
    /// `size` (duplicates collapse, as in upstream proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            // Cap the attempts so narrow element domains cannot loop
            // forever; the set simply stays smaller, as upstream allows.
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < 16 * n.max(1) {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Drives one property: `cases` deterministic random draws.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng),
{
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across properties.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};

    /// Namespace mirror of the upstream `prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over random inputs.
///
/// Supports the upstream syntax used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, flip in any::<bool>()) {
///         prop_assert!(x < 10 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(config, stringify!($name), |prop_rng| {
                    $( let $arg = $crate::Strategy::new_value(&($strategy), prop_rng); )*
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strategy ),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.25f64..=0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec(0u32..100, 2..6),
            s in collection::btree_set(0usize..4, 1..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() < 4);
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>(), j in Just(7usize)) {
            prop_assert!(usize::from(b) <= 1);
            prop_assert_eq!(j, 7);
        }
    }
}
