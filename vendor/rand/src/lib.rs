//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) subset of the `rand 0.8` API the workspace
//! uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], the [`Standard`]
//! distribution for `f64`/`f32`/`bool` and the integer/float
//! `gen_range` sampling, plus [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not bit-compatible with upstream `rand` (which uses
//! ChaCha12), but a high-quality deterministic PRNG, which is all the
//! workspace relies on: every consumer seeds explicitly via
//! [`SeedableRng::seed_from_u64`] and only needs reproducibility across
//! runs of *this* codebase.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use distributions::{Distribution, Standard};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample_from(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` by expanding it with
    /// SplitMix64, as upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a random `u64` to a double in `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpoint/restore.
        ///
        /// This is an extension over the upstream `rand` API: restoring a
        /// generator via [`StdRng::from_state`] continues the exact stream
        /// that `state` was captured from.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`].
        ///
        /// The all-zero state (a fixed point of xoshiro256++, never produced
        /// by seeding or stepping) is remapped the same way `from_seed` does.
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0, 0, 0, 0] {
                return Self::from_seed([0u8; 32]);
            }
            Self { s: state }
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high);
                let span = (high as u128) - (low as u128);
                low + (mul_shift_128(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low <= high);
                let span = (high as u128) - (low as u128) + 1;
                low + (mul_shift_128(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high);
                let span = (high as i128 - low as i128) as u128;
                let offset = mul_shift_128(rng.next_u64(), span) as i128;
                (low as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = mul_shift_128(rng.next_u64(), span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

/// `(word * span) >> 64` — an (almost perfectly) unbiased map of a random
/// 64-bit word onto `[0, span)`.
fn mul_shift_128(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (word as u128 * span) >> 64
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high);
                let u = unit_f64(rng.next_u64()) as $t;
                let v = low + (high - low) * u;
                if v < high { v } else { <$t>::max(low, prev_down(high)) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low <= high);
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

/// Largest float strictly below `x` (for clamping half-open float ranges).
fn prev_down<T: Float>(x: T) -> T {
    x.prev_down()
}

trait Float: Copy {
    fn prev_down(self) -> Self;
}

impl Float for f64 {
    fn prev_down(self) -> Self {
        f64::from_bits(self.to_bits() - 1)
    }
}

impl Float for f32 {
    fn prev_down(self) -> Self {
        f32::from_bits(self.to_bits() - 1)
    }
}

impl_sample_uniform_float!(f64, f32);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Distributions (the subset the workspace uses).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample. (Named `sample_from` internally; `Rng::gen`
        /// goes through this.)
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

        /// Upstream-compatible alias for [`Distribution::sample_from`].
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            self.sample_from(rng)
        }
    }

    /// The standard distribution: uniform `[0, 1)` floats, uniform
    /// integers, fair booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait over slices, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.5..1.0);
            assert!((0.5..1.0).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
