//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! they can be persisted by downstream users, but nothing in-tree actually
//! serialises anything. With no crates.io access, this stub keeps the
//! derive attributes compiling: the traits are marker traits with blanket
//! implementations, and the derive macros (re-exported from
//! `serde_derive`) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}
