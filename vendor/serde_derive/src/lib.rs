//! No-op derive macros backing the vendored `serde` stub.
//!
//! The real `serde_derive` generates `Serialize`/`Deserialize`
//! implementations; the vendored `serde` gives those traits blanket
//! implementations instead, so the derives here only need to *exist* (and
//! accept `#[serde(...)]` attributes) — they expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
